package analysis

import (
	"go/ast"
	"go/types"
)

// TicketPair enforces gate-ticket hygiene on the window disciplines: a
// ticket claimed through a gate's acquire must be published through the
// matching release on every control-flow path out of the claiming
// function. A path that returns while still holding the ticket leaves
// an orphan pinning the window's low-water mark, and every other worker
// wedges at the ≤ τ admission — the exact failure PR 8's fault layer
// reproduces dynamically with AbandonTicket and that ReclaimTicket
// exists to undo. This analyzer catches the accidental version at vet
// time.
//
// A "window" is any named type with both an acquire and a release
// method (stripedWindow today; the check is structural so future gates
// inherit it). The analysis is conservative:
//
//   - a release (or defer of one) on the same window object satisfies
//     the claim from that point on
//   - an if/switch/select releases only if every branch does (an
//     else-less if does not)
//   - a loop body may run zero times, so a release inside one never
//     satisfies a claim made outside it
//   - a return reached while the ticket is still held is reported at
//     the claim site, as is falling off the end of the function
//
// Methods of the window type itself are exempt (they implement the
// protocol rather than use it), and the deliberate leak —
// AbandonTicket's crash simulation — carries a function-scope
// //asgdvet:allow ticketpair(...) directive.
var TicketPair = &Analyzer{
	Name: "ticketpair",
	Doc:  "flags gate-ticket acquires without a matching release on every path",
	Run:  runTicketPair,
}

// windowMethods resolves the package's window types and returns their
// acquire and release method objects keyed by role.
type windowMethods struct {
	acquire map[*types.Func]bool
	release map[*types.Func]bool
	windows map[*types.Named]bool
}

func findWindowMethods(pkg *Package) *windowMethods {
	wm := &windowMethods{
		acquire: make(map[*types.Func]bool),
		release: make(map[*types.Func]bool),
		windows: make(map[*types.Named]bool),
	}
	scope := pkg.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		ms := types.NewMethodSet(types.NewPointer(named))
		var acq, rel *types.Func
		for i := 0; i < ms.Len(); i++ {
			if f, ok := ms.At(i).Obj().(*types.Func); ok {
				switch f.Name() {
				case "acquire", "Acquire":
					acq = f
				case "release", "Release":
					rel = f
				}
			}
		}
		if acq != nil && rel != nil {
			wm.windows[named] = true
			wm.acquire[acq] = true
			wm.release[rel] = true
		}
	}
	return wm
}

func runTicketPair(p *Pass) {
	wm := findWindowMethods(p.Pkg)
	if len(wm.windows) == 0 {
		return
	}
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || isWindowMethod(info, wm, fd) {
				continue
			}
			checkTicketFunc(p, wm, fd)
		}
	}
}

// isWindowMethod reports whether fd is declared on a window type — the
// protocol implementation, not a protocol user.
func isWindowMethod(info *types.Info, wm *windowMethods, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	t := info.TypeOf(fd.Recv.List[0].Type)
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && wm.windows[named]
}

// ticketCall classifies call as an acquire or release of a window,
// returning the role, the window object the receiver resolves to (nil
// for complex receiver expressions), and whether it matched at all.
func ticketCall(info *types.Info, wm *windowMethods, call *ast.CallExpr) (acquire bool, win *types.Var, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return false, nil, false
	}
	fn, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn {
		return false, nil, false
	}
	switch {
	case wm.acquire[fn]:
		return true, rootVar(info, sel.X), true
	case wm.release[fn]:
		return false, rootVar(info, sel.X), true
	}
	return false, nil, false
}

// checkTicketFunc verifies every acquire in fd against the statements
// that follow it, walking back out through the enclosing blocks.
func checkTicketFunc(p *Pass, wm *windowMethods, fd *ast.FuncDecl) {
	info := p.Pkg.Info
	inspectStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // a nested function is its own ticket scope
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		acq, win, ok := ticketCall(info, wm, call)
		if !ok || !acq {
			return true
		}
		if !releasedFrom(info, wm, win, fd, call, stack) {
			p.Reportf(call.Pos(), "gate ticket acquired here is not released on every path out of %s; an orphaned ticket pins the window and wedges every worker at the admission gate", fd.Name.Name)
		}
		return true
	})
}

// releasedFrom reports whether every path from the acquire at call to
// the exit of fd performs the matching release. It analyzes the
// statement suffix of each enclosing block from the innermost out: a
// suffix that guarantees the release settles it; a leaking exit on the
// way fails it; otherwise control falls through to the next enclosing
// suffix.
func releasedFrom(info *types.Info, wm *windowMethods, win *types.Var, fd *ast.FuncDecl, call *ast.CallExpr, stack []ast.Node) bool {
	tp := &ticketPath{info: info, wm: wm, win: win}
	// mark holds the position after which statements count: first the
	// acquire call itself, then each enclosing statement on the way out.
	mark := call.End()
	for i := len(stack) - 1; i >= 0; i-- {
		var list []ast.Stmt
		switch b := stack[i].(type) {
		case *ast.BlockStmt:
			list = b.List
		case *ast.CaseClause:
			list = b.Body
		case *ast.CommClause:
			list = b.Body
		case *ast.ForStmt, *ast.RangeStmt:
			// Leaving a loop iteration re-enters the loop, which may
			// also exit having run the suffix zero more times; the
			// ticket claimed inside must have been settled within the
			// body, and it was not (or we would have stopped already).
			return false
		default:
			mark = stack[i].End()
			continue
		}
		var suffix []ast.Stmt
		for _, s := range list {
			if s.Pos() >= mark {
				suffix = append(suffix, s)
			}
		}
		released, leaked := tp.analyze(suffix)
		if leaked {
			return false
		}
		if released {
			return true
		}
		mark = stack[i].End()
	}
	return false // fell off the end of the function still holding the ticket
}

// ticketPath is the conservative all-paths release analysis.
type ticketPath struct {
	info *types.Info
	wm   *windowMethods
	win  *types.Var
}

// analyze scans a statement list in order. released means every path
// that falls through the whole list has performed the release; leaked
// means some path exits the function from inside the list while still
// holding the ticket.
func (tp *ticketPath) analyze(list []ast.Stmt) (released, leaked bool) {
	for _, s := range list {
		if released {
			return true, leaked
		}
		r, l := tp.stmt(s)
		released = released || r
		leaked = leaked || l
	}
	return released, leaked
}

// stmt reports whether executing s guarantees the release (on all paths
// through s) and whether s can exit the function while leaking.
func (tp *ticketPath) stmt(s ast.Stmt) (released, leaked bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		return tp.isRelease(s.X), false
	case *ast.DeferStmt:
		// A deferred release runs at every subsequent exit.
		return tp.isRelease(s.Call), false
	case *ast.ReturnStmt:
		return false, true // reached ⇒ exiting without the release
	case *ast.LabeledStmt:
		return tp.stmt(s.Stmt)
	case *ast.BlockStmt:
		return tp.analyze(s.List)
	case *ast.IfStmt:
		r1, l1 := tp.analyze(s.Body.List)
		if s.Else == nil {
			return false, l1 // the not-taken path skips any release in the body
		}
		r2, l2 := tp.stmt(s.Else)
		return r1 && r2, l1 || l2
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return tp.clauses(s)
	case *ast.ForStmt:
		// The body may run zero times: releases inside never satisfy,
		// leaks inside still leak.
		_, l := tp.analyze(s.Body.List)
		return false, l
	case *ast.RangeStmt:
		_, l := tp.analyze(s.Body.List)
		return false, l
	default:
		return false, false
	}
}

// clauses folds a switch/type-switch/select: released only when every
// clause releases and (for switches) a default clause exists; a select
// always executes exactly one clause.
func (tp *ticketPath) clauses(s ast.Stmt) (released, leaked bool) {
	var body *ast.BlockStmt
	needDefault := true
	switch s := s.(type) {
	case *ast.SwitchStmt:
		body = s.Body
	case *ast.TypeSwitchStmt:
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
		needDefault = false
	}
	all, hasDefault := true, false
	for _, c := range body.List {
		var list []ast.Stmt
		var isDefault bool
		switch c := c.(type) {
		case *ast.CaseClause:
			list, isDefault = c.Body, c.List == nil
		case *ast.CommClause:
			list, isDefault = c.Body, c.Comm == nil
		}
		hasDefault = hasDefault || isDefault
		r, l := tp.analyze(list)
		all = all && r
		leaked = leaked || l
	}
	if len(body.List) == 0 {
		all = false
	}
	return all && (hasDefault || !needDefault), leaked
}

// isRelease reports whether expr is a direct call of the window's
// release on the same window object (or on an unresolvable receiver,
// which is accepted — the analysis errs toward the code's word once the
// right method is clearly being called).
func (tp *ticketPath) isRelease(expr ast.Expr) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return false
	}
	acq, win, ok := ticketCall(tp.info, tp.wm, call)
	if !ok || acq {
		return false
	}
	return tp.win == nil || win == nil || tp.win == win
}
