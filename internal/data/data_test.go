package data

import (
	"errors"
	"math"
	"testing"

	"asyncsgd/internal/rng"
	"asyncsgd/internal/vec"
)

func TestGenLinearShapesAndDeterminism(t *testing.T) {
	cfg := LinearConfig{Samples: 50, Dim: 4, NoiseStd: 0.1}
	a, err := GenLinear(cfg, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenLinear(cfg, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != 50 || a.Dim() != 4 {
		t.Fatalf("shape = (%d, %d)", a.Len(), a.Dim())
	}
	for i := range a.Rows {
		if !vec.ApproxEqual(a.Rows[i], b.Rows[i], 0) || a.Labels[i] != b.Labels[i] {
			t.Fatal("same seed produced different datasets")
		}
	}
	if !vec.ApproxEqual(a.Truth, b.Truth, 0) {
		t.Error("truth differs")
	}
	if math.Abs(a.Truth.Norm2()-1) > 1e-12 {
		t.Errorf("default truth norm = %v, want 1", a.Truth.Norm2())
	}
}

func TestGenLinearNoiselessLabelsExact(t *testing.T) {
	ds, err := GenLinear(LinearConfig{Samples: 30, Dim: 3}, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range ds.Rows {
		want := vec.MustDot(row, ds.Truth)
		if math.Abs(ds.Labels[i]-want) > 1e-12 {
			t.Fatalf("label %d = %v, want %v", i, ds.Labels[i], want)
		}
	}
}

func TestGenLinearConditioning(t *testing.T) {
	ds, err := GenLinear(LinearConfig{
		Samples: 4000, Dim: 4, CondExp: 10,
	}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	g, err := ds.Gram()
	if err != nil {
		t.Fatal(err)
	}
	lo, hi, err := g.ExtremeEigenvalues()
	if err != nil {
		t.Fatal(err)
	}
	cond := hi / lo
	// Expected condition number ≈ CondExp² = 100 (sampling noise wide).
	if cond < 30 || cond > 300 {
		t.Errorf("condition number = %v, want ≈100", cond)
	}
}

func TestGenLinearValidation(t *testing.T) {
	bad := []LinearConfig{
		{Samples: 0, Dim: 2},
		{Samples: 2, Dim: 0},
		{Samples: 2, Dim: 2, NoiseStd: -1},
	}
	for _, cfg := range bad {
		if _, err := GenLinear(cfg, rng.New(1)); !errors.Is(err, ErrBadShape) {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestGenLogistic(t *testing.T) {
	ds, err := GenLogistic(LogisticConfig{
		Samples: 500, Dim: 3, Margin: 3,
	}, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	pos, agree := 0, 0
	for i, row := range ds.Rows {
		y := ds.Labels[i]
		if y != 1 && y != -1 {
			t.Fatalf("label %v not ±1", y)
		}
		if y == 1 {
			pos++
		}
		if y*vec.MustDot(row, ds.Truth) > 0 {
			agree++
		}
	}
	if pos < 100 || pos > 400 {
		t.Errorf("positives = %d/500, badly unbalanced", pos)
	}
	// With margin 3, labels should mostly agree with the planted model.
	if agree < 350 {
		t.Errorf("only %d/500 labels agree with planted model", agree)
	}
}

func TestGenLogisticValidation(t *testing.T) {
	if _, err := GenLogistic(LogisticConfig{Samples: 1, Dim: 1, FlipProb: 0.6},
		rng.New(1)); !errors.Is(err, ErrBadShape) {
		t.Error("flip prob > 0.5 accepted")
	}
	if _, err := GenLogistic(LogisticConfig{Samples: 0, Dim: 1},
		rng.New(1)); !errors.Is(err, ErrBadShape) {
		t.Error("0 samples accepted")
	}
}

func TestSparsifyRowsPreservesScaleAndSparsifies(t *testing.T) {
	ds, err := GenLinear(LinearConfig{Samples: 2000, Dim: 10}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	var before float64
	for _, r := range ds.Rows {
		before += r.Norm2Sq()
	}
	if err := SparsifyRows(ds, 0.3, rng.New(6)); err != nil {
		t.Fatal(err)
	}
	var after float64
	nnz := 0
	for _, r := range ds.Rows {
		after += r.Norm2Sq()
		nnz += r.NNZ()
	}
	frac := float64(nnz) / float64(2000*10)
	if math.Abs(frac-0.3) > 0.03 {
		t.Errorf("kept fraction = %v, want ≈0.3", frac)
	}
	// E after = before/keep; check within 15%.
	want := before / 0.3
	if after < want*0.85 || after > want*1.15 {
		t.Errorf("second moment after sparsify = %v, want ≈%v", after, want)
	}
	if err := SparsifyRows(ds, 0, rng.New(7)); !errors.Is(err, ErrBadShape) {
		t.Error("keep=0 accepted")
	}
}

func TestMaxRowNorm2SqAndGramErrors(t *testing.T) {
	ds := &Dataset{}
	if ds.MaxRowNorm2Sq() != 0 {
		t.Error("empty max row norm nonzero")
	}
	if _, err := ds.Gram(); !errors.Is(err, ErrBadShape) {
		t.Error("Gram on empty dataset accepted")
	}
	ds2 := &Dataset{Rows: []vec.Dense{{3, 4}, {1, 0}}, Labels: []float64{0, 0}}
	if ds2.MaxRowNorm2Sq() != 25 {
		t.Errorf("MaxRowNorm2Sq = %v", ds2.MaxRowNorm2Sq())
	}
}
