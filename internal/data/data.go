// Package data generates the synthetic datasets used by the regression and
// classification workloads. The paper's experiments need no proprietary
// data — its claims are about the optimization dynamics — so Gaussian
// linear-model and logistic-model generators with controllable dimension,
// sample count, conditioning, sparsity and noise are the faithful
// substitute (see DESIGN.md §1).
package data

import (
	"errors"
	"math"

	"asyncsgd/internal/rng"
	"asyncsgd/internal/vec"
)

// Dataset is a supervised dataset with dense feature rows.
type Dataset struct {
	Rows   []vec.Dense // feature vectors a_i
	Labels []float64   // targets b_i (regression) or ±1 (classification)
	Truth  vec.Dense   // generating model x♮ (for diagnostics)
}

// ErrBadShape reports invalid generator parameters.
var ErrBadShape = errors.New("data: invalid shape")

// Len returns the number of samples.
func (ds *Dataset) Len() int { return len(ds.Rows) }

// Dim returns the feature dimension (0 for an empty dataset).
func (ds *Dataset) Dim() int {
	if len(ds.Rows) == 0 {
		return 0
	}
	return ds.Rows[0].Dim()
}

// MaxRowNorm2Sq returns max_i ‖a_i‖², which bounds the per-sample gradient
// Lipschitz constants of least squares and logistic regression.
func (ds *Dataset) MaxRowNorm2Sq() float64 {
	var m float64
	for _, r := range ds.Rows {
		if s := r.Norm2Sq(); s > m {
			m = s
		}
	}
	return m
}

// Gram returns the empirical second-moment matrix (1/m)·Σ a_i a_iᵀ, whose
// extreme eigenvalues give the least-squares strong convexity and
// smoothness constants.
func (ds *Dataset) Gram() (*vec.Sym, error) {
	d := ds.Dim()
	if d == 0 {
		return nil, ErrBadShape
	}
	g := vec.NewSym(d)
	w := 1 / float64(ds.Len())
	for _, r := range ds.Rows {
		if err := g.AddOuter(w, r); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// LinearConfig parameterizes GenLinear.
type LinearConfig struct {
	Samples   int     // m
	Dim       int     // d
	NoiseStd  float64 // label noise standard deviation
	CondExp   float64 // feature scale decay: coord j scaled by CondExp^(-j/(d-1)); 1 = isotropic
	TruthNorm float64 // ‖x♮‖ of the planted model (0 ⇒ 1)
}

// GenLinear generates a linear-regression dataset b = a·x♮ + ξ with
// Gaussian features. CondExp > 1 skews the feature covariance to produce
// an ill-conditioned Gram matrix (condition number ≈ CondExp²).
func GenLinear(cfg LinearConfig, r *rng.Rand) (*Dataset, error) {
	if cfg.Samples <= 0 || cfg.Dim <= 0 || cfg.NoiseStd < 0 {
		return nil, ErrBadShape
	}
	if cfg.CondExp == 0 {
		cfg.CondExp = 1
	}
	if cfg.TruthNorm == 0 {
		cfg.TruthNorm = 1
	}
	scales := coordScales(cfg.Dim, cfg.CondExp)
	truth := randomDirection(cfg.Dim, cfg.TruthNorm, r)
	ds := &Dataset{
		Rows:   make([]vec.Dense, cfg.Samples),
		Labels: make([]float64, cfg.Samples),
		Truth:  truth,
	}
	for i := 0; i < cfg.Samples; i++ {
		row := vec.NewDense(cfg.Dim)
		for j := range row {
			row[j] = scales[j] * r.Normal()
		}
		ds.Rows[i] = row
		ds.Labels[i] = vec.MustDot(row, truth) + cfg.NoiseStd*r.Normal()
	}
	return ds, nil
}

// LogisticConfig parameterizes GenLogistic.
type LogisticConfig struct {
	Samples  int
	Dim      int
	Margin   float64 // scale of the planted model; larger ⇒ more separable
	FlipProb float64 // label noise: probability of flipping the label
	CondExp  float64 // feature conditioning as in LinearConfig
}

// GenLogistic generates a binary classification dataset with labels ±1
// drawn from the logistic model P(y=1|a) = σ(Margin·a·x♮), with optional
// label flips.
func GenLogistic(cfg LogisticConfig, r *rng.Rand) (*Dataset, error) {
	if cfg.Samples <= 0 || cfg.Dim <= 0 || cfg.FlipProb < 0 || cfg.FlipProb > 0.5 {
		return nil, ErrBadShape
	}
	if cfg.CondExp == 0 {
		cfg.CondExp = 1
	}
	if cfg.Margin == 0 {
		cfg.Margin = 1
	}
	scales := coordScales(cfg.Dim, cfg.CondExp)
	truth := randomDirection(cfg.Dim, 1, r)
	ds := &Dataset{
		Rows:   make([]vec.Dense, cfg.Samples),
		Labels: make([]float64, cfg.Samples),
		Truth:  truth,
	}
	for i := 0; i < cfg.Samples; i++ {
		row := vec.NewDense(cfg.Dim)
		for j := range row {
			row[j] = scales[j] * r.Normal()
		}
		ds.Rows[i] = row
		p := 1 / (1 + math.Exp(-cfg.Margin*vec.MustDot(row, truth)))
		y := -1.0
		if r.Bernoulli(p) {
			y = 1
		}
		if r.Bernoulli(cfg.FlipProb) {
			y = -y
		}
		ds.Labels[i] = y
	}
	return ds, nil
}

// SparsifyRows zeroes each feature entry independently with probability
// 1−keep and rescales survivors by 1/keep so row second moments are
// preserved in expectation. It models the sparse-gradient workloads the
// Hogwild literature motivates. keep must be in (0, 1].
func SparsifyRows(ds *Dataset, keep float64, r *rng.Rand) error {
	if keep <= 0 || keep > 1 {
		return ErrBadShape
	}
	inv := 1 / keep
	for _, row := range ds.Rows {
		for j := range row {
			if r.Bernoulli(keep) {
				row[j] *= inv
			} else {
				row[j] = 0
			}
		}
	}
	return nil
}

func coordScales(d int, condExp float64) []float64 {
	s := make([]float64, d)
	for j := range s {
		if d == 1 || condExp == 1 {
			s[j] = 1
			continue
		}
		frac := float64(j) / float64(d-1)
		s[j] = math.Pow(condExp, -frac)
	}
	return s
}

func randomDirection(d int, norm float64, r *rng.Rand) vec.Dense {
	v := vec.NewDense(d)
	for {
		r.NormalVector(v, 1)
		if n := v.Norm2(); n > 0 {
			v.Scale(norm / n)
			return v
		}
	}
}
