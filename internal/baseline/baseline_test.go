package baseline

import (
	"errors"
	"math"
	"testing"

	"asyncsgd/internal/grad"
	"asyncsgd/internal/vec"
)

func isoOracle(t *testing.T, d int, sigma float64) grad.Oracle {
	t.Helper()
	q, err := grad.NewIsoQuadratic(d, 1, sigma, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestRunSequentialValidation(t *testing.T) {
	q := isoOracle(t, 2, 0.1)
	bad := []SeqConfig{
		{},
		{Oracle: q, Alpha: 0, Iters: 5},
		{Oracle: q, Alpha: 0.1, Iters: 0},
		{Oracle: q, Alpha: 0.1, Iters: 5, X0: vec.Dense{1}},
	}
	for i, cfg := range bad {
		if _, err := RunSequential(cfg); !errors.Is(err, ErrBadConfig) {
			t.Errorf("config %d accepted: %v", i, err)
		}
	}
}

func TestSequentialConvergesOnQuadratic(t *testing.T) {
	q := isoOracle(t, 3, 0.1)
	res, err := RunSequential(SeqConfig{
		Oracle: q, X0: vec.Dense{2, -2, 1}, Alpha: 0.1, Iters: 500,
		Seed: 1, TrackDist: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DistSq[len(res.DistSq)-1] > 0.2 {
		t.Errorf("final dist² = %v", res.DistSq[len(res.DistSq)-1])
	}
	if ht := res.HitTime(0.2); ht <= 0 {
		t.Errorf("HitTime = %d", ht)
	}
	if res.HitTime(1e-30) != -1 {
		t.Error("impossible target should give -1")
	}
}

func TestSequentialDeterministic(t *testing.T) {
	q := isoOracle(t, 2, 0.3)
	cfg := SeqConfig{Oracle: q, Alpha: 0.05, Iters: 100, Seed: 9}
	a, err := RunSequential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSequential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !vec.ApproxEqual(a.Final, b.Final, 0) {
		t.Error("same seed produced different results")
	}
}

func TestNoiselessContractionMatchesTheory(t *testing.T) {
	// With σ=0 on f=(1/2)‖x‖², x_T = (1−α)^T x_0 exactly — the quantity
	// the Section-5 analysis compares against.
	q, err := grad.NewQuad1D(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	alpha, T := 0.1, 25
	res, err := RunSequential(SeqConfig{
		Oracle: q, X0: vec.Dense{1}, Alpha: alpha, Iters: T, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Pow(1-alpha, float64(T))
	if math.Abs(res.Final[0]-want) > 1e-12 {
		t.Errorf("x_T = %v, want %v", res.Final[0], want)
	}
}

func TestMiniBatchReducesVariance(t *testing.T) {
	q := isoOracle(t, 2, 1.0)
	varOf := func(batch int) float64 {
		var acc float64
		const trials = 60
		for k := 0; k < trials; k++ {
			res, err := RunSequential(SeqConfig{
				Oracle: q, Alpha: 0.1, Iters: 200, Seed: uint64(k), Batch: batch,
			})
			if err != nil {
				t.Fatal(err)
			}
			d2, _ := vec.Dist2Sq(res.Final, q.Optimum())
			acc += d2
		}
		return acc / trials
	}
	v1, v8 := varOf(1), varOf(8)
	if v8 >= v1 {
		t.Errorf("batch-8 steady-state error %v not below batch-1 %v", v8, v1)
	}
}

func TestFailureProbabilityMonotoneInT(t *testing.T) {
	q := isoOracle(t, 2, 0.4)
	eps := 0.3
	cst := q.Constants()
	alpha := cst.C * eps / cst.M2
	pf := func(T int) float64 {
		p, err := FailureProbability(SeqConfig{
			Oracle: q, X0: vec.Dense{1.5, -1.5}, Alpha: alpha, Iters: T,
		}, eps, 80, 42)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	pShort, pLong := pf(30), pf(600)
	if pLong > pShort {
		t.Errorf("P(F_T) increased with T: %v -> %v", pShort, pLong)
	}
	if pLong > 0.5 {
		t.Errorf("long-run failure probability %v too high", pLong)
	}
	if _, err := FailureProbability(SeqConfig{Oracle: q, Alpha: 0.1, Iters: 1},
		eps, 0, 1); !errors.Is(err, ErrBadConfig) {
		t.Error("trials=0 accepted")
	}
}
