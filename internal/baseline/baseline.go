// Package baseline provides the non-concurrent comparison algorithms: the
// sequential SGD iteration the paper's bounds are measured against
// (Theorem 3.1 / the "no adversary" side of Section 5), and a mini-batch
// variant used in ablations.
package baseline

import (
	"errors"
	"fmt"

	"asyncsgd/internal/grad"
	"asyncsgd/internal/rng"
	"asyncsgd/internal/vec"
)

// ErrBadConfig reports invalid baseline parameters.
var ErrBadConfig = errors.New("baseline: invalid configuration")

// SeqConfig parameterizes a sequential SGD run.
type SeqConfig struct {
	Oracle    grad.Oracle
	X0        vec.Dense // nil ⇒ zero vector
	Alpha     float64
	Iters     int
	Seed      uint64
	Batch     int  // mini-batch size; 0 or 1 ⇒ plain SGD
	TrackDist bool // record ‖x_t − x*‖² for every t
}

// SeqResult is the outcome of a sequential run.
type SeqResult struct {
	Final  vec.Dense
	DistSq []float64 // per-iteration squared distance (TrackDist)
}

// RunSequential executes x_{t+1} = x_t − α·g̃(x_t) for Iters steps.
func RunSequential(cfg SeqConfig) (*SeqResult, error) {
	if cfg.Oracle == nil || cfg.Alpha <= 0 || cfg.Iters <= 0 {
		return nil, fmt.Errorf("%w: %+v", ErrBadConfig, cfg)
	}
	d := cfg.Oracle.Dim()
	x := cfg.X0
	if x == nil {
		x = vec.NewDense(d)
	} else {
		x = x.Clone()
	}
	if x.Dim() != d {
		return nil, fmt.Errorf("%w: X0 dim %d vs oracle %d", ErrBadConfig, x.Dim(), d)
	}
	batch := cfg.Batch
	if batch <= 0 {
		batch = 1
	}
	r := rng.New(cfg.Seed)
	xstar := cfg.Oracle.Optimum()
	g := vec.NewDense(d)
	sum := vec.NewDense(d)
	res := &SeqResult{}
	if cfg.TrackDist {
		res.DistSq = make([]float64, 0, cfg.Iters+1)
		d2, err := vec.Dist2Sq(x, xstar)
		if err != nil {
			return nil, err
		}
		res.DistSq = append(res.DistSq, d2)
	}
	for t := 0; t < cfg.Iters; t++ {
		if batch == 1 {
			cfg.Oracle.Grad(g, x, r)
			if err := x.AddScaled(-cfg.Alpha, g); err != nil {
				return nil, err
			}
		} else {
			sum.Zero()
			for b := 0; b < batch; b++ {
				cfg.Oracle.Grad(g, x, r)
				if err := sum.Add(g); err != nil {
					return nil, err
				}
			}
			if err := x.AddScaled(-cfg.Alpha/float64(batch), sum); err != nil {
				return nil, err
			}
		}
		if cfg.TrackDist {
			d2, err := vec.Dist2Sq(x, xstar)
			if err != nil {
				return nil, err
			}
			res.DistSq = append(res.DistSq, d2)
		}
	}
	res.Final = x
	return res, nil
}

// HitTime returns the first index t with DistSq[t] ≤ eps, or −1. Requires
// TrackDist.
func (r *SeqResult) HitTime(eps float64) int {
	for t, d2 := range r.DistSq {
		if d2 <= eps {
			return t
		}
	}
	return -1
}

// FailureProbability estimates P(F_T) — the probability that sequential
// SGD has not entered the success region by iteration T — over trials
// Monte-Carlo runs with independent seeds derived from seed.
func FailureProbability(cfg SeqConfig, eps float64, trials int, seed uint64) (float64, error) {
	if trials <= 0 {
		return 0, fmt.Errorf("%w: trials=%d", ErrBadConfig, trials)
	}
	fails := 0
	for k := 0; k < trials; k++ {
		c := cfg
		c.Seed = seed + uint64(k)*0x9E3779B97F4A7C15
		c.TrackDist = true
		res, err := RunSequential(c)
		if err != nil {
			return 0, err
		}
		if res.HitTime(eps) < 0 {
			fails++
		}
	}
	return float64(fails) / float64(trials), nil
}
