package metrics

import (
	"io"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeRender(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("jobs_total", "total jobs")
	g := r.NewGauge("queue_depth", "live queued jobs")
	c.Add(3)
	c.Inc()
	g.Set(7)
	g.Dec()
	r.NewGaugeFunc("cache_len", "cached entries", func() float64 { return 2 })

	got := r.Render()
	want := `# HELP cache_len cached entries
# TYPE cache_len gauge
cache_len 2
# HELP jobs_total total jobs
# TYPE jobs_total counter
jobs_total 4
# HELP queue_depth live queued jobs
# TYPE queue_depth gauge
queue_depth 6
`
	if got != want {
		t.Fatalf("render mismatch:\n got: %q\nwant: %q", got, want)
	}
	if c.Value() != 4 || g.Value() != 6 {
		t.Fatalf("values: counter %v gauge %v", c.Value(), g.Value())
	}
}

func TestLabeledFamiliesSortDeterministically(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("jobs_total", "jobs by state", "state")
	v.With("running").Inc()
	v.With("done").Add(2)
	v.With("done").Inc() // same tuple → same child
	got := r.Render()
	want := `# HELP jobs_total jobs by state
# TYPE jobs_total counter
jobs_total{state="done"} 3
jobs_total{state="running"} 1
`
	if got != want {
		t.Fatalf("render mismatch:\n got: %q\nwant: %q", got, want)
	}
	if r.Render() != got {
		t.Fatal("two renders of the same state differ")
	}
}

func TestHistogramBucketsSumCountQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("lat_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.05, 0.5, 2, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count %d", h.Count())
	}
	if got := h.Sum(); math.Abs(got-102.6) > 1e-9 {
		t.Fatalf("sum %v", got)
	}
	got := r.Render()
	want := `# HELP lat_seconds latency
# TYPE lat_seconds histogram
lat_seconds_bucket{le="0.1"} 2
lat_seconds_bucket{le="1"} 3
lat_seconds_bucket{le="10"} 4
lat_seconds_bucket{le="+Inf"} 5
lat_seconds_sum 102.6
lat_seconds_count 5
`
	if got != want {
		t.Fatalf("render mismatch:\n got: %q\nwant: %q", got, want)
	}
	// Quantiles resolve to bucket upper bounds.
	if q := h.Quantile(0.5); q != 1 {
		t.Fatalf("p50 %v, want 1", q)
	}
	if q := h.Quantile(0.99); !math.IsInf(q, 1) {
		t.Fatalf("p99 %v, want +Inf", q)
	}
	var empty Histogram
	if !math.IsNaN(empty.Quantile(0.5)) {
		t.Fatal("empty histogram quantile must be NaN")
	}
}

// TestObserveExactBoundary: Prometheus buckets are le (≤), so an
// observation equal to a bound lands in that bound's bucket.
func TestObserveExactBoundary(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	h.Observe(1)
	h.Observe(2)
	if h.counts[0].Load() != 1 || h.counts[1].Load() != 1 || h.inf.Load() != 0 {
		t.Fatalf("boundary observations landed in %v %v inf=%v",
			h.counts[0].Load(), h.counts[1].Load(), h.inf.Load())
	}
}

func TestHandlerServesTextFormat(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("a_total", "a").Inc()
	ts := httptest.NewServer(r.Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != ContentType {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "a_total 1") {
		t.Fatalf("body: %s", body)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "")
	g := r.NewGauge("g", "")
	h := r.NewHistogram("h", "", []float64{1})
	v := r.NewCounterVec("v_total", "", "k")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 3))
				v.With("x").Inc()
				_ = r.Render()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || g.Value() != 8000 || h.Count() != 8000 || v.With("x").Value() != 8000 {
		t.Fatalf("lost updates: c=%v g=%v h=%v v=%v", c.Value(), g.Value(), h.Count(), v.With("x").Value())
	}
}

func TestRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("dup", "")
	for name, fn := range map[string]func(){
		"duplicate":    func() { r.NewGauge("dup", "") },
		"bad name":     func() { r.NewCounter("0bad", "") },
		"empty name":   func() { r.NewCounter("", "") },
		"neg counter":  func() { r.NewCounter("neg", "").Add(-1) },
		"bad buckets":  func() { r.NewHistogram("hb", "", []float64{2, 1}) },
		"label arity":  func() { r.NewCounterVec("lv_total", "", "a", "b").With("only-one") },
		"bad exp args": func() { ExponentialBuckets(0, 2, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestExponentialBuckets(t *testing.T) {
	got := ExponentialBuckets(0.001, 10, 4)
	want := []float64{0.001, 0.01, 0.1, 1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("bucket %d: %v want %v", i, got[i], want[i])
		}
	}
}
