// Package metrics is a dependency-free instrumentation registry in the
// shape of the Prometheus client model: counters, gauges and histograms,
// optionally split by a fixed label set, registered by name and rendered
// in the Prometheus text exposition format (version 0.0.4 — the format
// every Prometheus-compatible scraper speaks). The serve layer mounts a
// Registry's Handler as GET /metrics.
//
// The package deliberately implements only what the repo needs — no
// summaries, no exemplars, no push gateway — so asgdserve keeps its
// zero-external-dependency property while still being scrapeable by any
// standard collector. Rendering is deterministic: families sort by name,
// children by label value, so two renders of the same state are
// byte-identical (the property every golden test in this repo leans on).
//
// All value types are safe for concurrent use; registration is expected
// at construction time but is also locked.
package metrics

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds named metric families and renders them in the
// Prometheus text format. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	names    []string // sorted registration names
}

// family is one named metric: its help text, type, and children (one per
// label-value combination; the empty key for unlabeled metrics).
type family struct {
	name      string
	help      string
	kind      string // "counter" | "gauge" | "histogram"
	labelKeys []string
	mu        sync.Mutex
	children  map[string]renderable
}

// renderable emits the sample lines of one child.
type renderable interface {
	render(w *strings.Builder, name, labels string)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) register(name, help, kind string, labelKeys []string) *family {
	if name == "" || !validName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[name]; dup {
		panic(fmt.Sprintf("metrics: duplicate registration of %q", name))
	}
	f := &family{
		name: name, help: help, kind: kind,
		labelKeys: labelKeys,
		children:  make(map[string]renderable),
	}
	r.families[name] = f
	i := sort.SearchStrings(r.names, name)
	r.names = append(r.names, "")
	copy(r.names[i+1:], r.names[i:])
	r.names[i] = name
	return f
}

// validName checks the Prometheus metric-name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(s string) bool {
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// child returns (creating on demand) the family member for one
// label-value tuple.
func (f *family) child(values []string, make func() renderable) renderable {
	if len(values) != len(f.labelKeys) {
		panic(fmt.Sprintf("metrics: %s wants %d label values, got %d",
			f.name, len(f.labelKeys), len(values)))
	}
	key := strings.Join(values, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	c := make()
	f.children[key] = c
	return c
}

// labelString renders {k="v",…} for a child key (empty for no labels).
func (f *family) labelString(key string) string {
	if len(f.labelKeys) == 0 {
		return ""
	}
	values := strings.Split(key, "\x00")
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range f.labelKeys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, values[i])
	}
	b.WriteByte('}')
	return b.String()
}

// --- counter ---------------------------------------------------------------

// Counter is a monotonically increasing value.
type Counter struct {
	bits atomic.Uint64 // float64 bits
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds v (v < 0 panics: counters are monotone).
func (c *Counter) Add(v float64) {
	if v < 0 {
		panic("metrics: counter decreased")
	}
	addFloat(&c.bits, v)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

func (c *Counter) render(w *strings.Builder, name, labels string) {
	sampleLine(w, name, labels, c.Value())
}

// --- gauge -----------------------------------------------------------------

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds v (may be negative).
func (g *Gauge) Add(v float64) { addFloat(&g.bits, v) }

// Inc adds 1; Dec subtracts 1.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) render(w *strings.Builder, name, labels string) {
	sampleLine(w, name, labels, g.Value())
}

// gaugeFunc renders a callback at scrape time (for values owned
// elsewhere, like a queue length under its own lock).
type gaugeFunc struct {
	fn func() float64
}

func (g gaugeFunc) render(w *strings.Builder, name, labels string) {
	sampleLine(w, name, labels, g.fn())
}

// addFloat CAS-loops a float64 add over the atomic bit pattern.
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// --- histogram -------------------------------------------------------------

// Histogram counts observations into cumulative buckets (Prometheus
// semantics: bucket le=x counts observations ≤ x; an implicit +Inf
// bucket catches everything) and tracks their sum.
type Histogram struct {
	bounds []float64 // ascending upper bounds, +Inf excluded
	counts []atomic.Uint64
	inf    atomic.Uint64
	sum    atomic.Uint64 // float64 bits
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	// Buckets are cumulative in the exposition; store per-bucket here and
	// accumulate at render time so Observe touches exactly one counter.
	i := sort.SearchFloat64s(h.bounds, v)
	if i < len(h.bounds) {
		h.counts[i].Add(1)
	} else {
		h.inf.Add(1)
	}
	addFloat(&h.sum, v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	n := h.inf.Load()
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile returns an estimate of quantile q ∈ [0,1] from the bucket
// counts: the upper bound of the first bucket whose cumulative count
// reaches q·total (the resolution is the bucket grid — same estimate a
// PromQL histogram_quantile gives). Returns NaN with no observations and
// +Inf when the quantile lands past the last finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.Count()
	if total == 0 {
		return math.NaN()
	}
	rank := q * float64(total)
	cum := uint64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		if float64(cum) >= rank {
			return b
		}
	}
	return math.Inf(1)
}

func (h *Histogram) render(w *strings.Builder, name, labels string) {
	// Splice le into the (possibly non-empty) label set.
	open := func(le string) string {
		if labels == "" {
			return `{le="` + le + `"}`
		}
		return labels[:len(labels)-1] + `,le="` + le + `"}`
	}
	cum := uint64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		sampleLine(w, name+"_bucket", open(formatFloat(b)), float64(cum))
	}
	cum += h.inf.Load()
	sampleLine(w, name+"_bucket", open("+Inf"), float64(cum))
	sampleLine(w, name+"_sum", labels, h.Sum())
	sampleLine(w, name+"_count", labels, float64(cum))
}

// DefBuckets is the default latency bucket grid (seconds), the standard
// Prometheus default widened below 5ms — queue waits on an idle server
// sit in the sub-millisecond range.
var DefBuckets = []float64{
	.0001, .00025, .0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10, 30, 60,
}

// ExponentialBuckets returns n bounds starting at start, each factor×
// the previous (start > 0, factor > 1, n ≥ 1).
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("metrics: bad ExponentialBuckets parameters")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// --- registration front doors ----------------------------------------------

// NewCounter registers and returns an unlabeled counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	f := r.register(name, help, "counter", nil)
	c := &Counter{}
	f.child(nil, func() renderable { return c })
	return c
}

// CounterVec is a counter family split by a fixed label set.
type CounterVec struct{ f *family }

// NewCounterVec registers a labeled counter family.
func (r *Registry) NewCounterVec(name, help string, labelKeys ...string) *CounterVec {
	return &CounterVec{r.register(name, help, "counter", labelKeys)}
}

// With returns the counter for one label-value tuple (created on first
// use; the same values always return the same counter).
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.child(values, func() renderable { return &Counter{} }).(*Counter)
}

// NewGauge registers and returns an unlabeled gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	f := r.register(name, help, "gauge", nil)
	g := &Gauge{}
	f.child(nil, func() renderable { return g })
	return g
}

// GaugeVec is a gauge family split by a fixed label set.
type GaugeVec struct{ f *family }

// NewGaugeVec registers a labeled gauge family.
func (r *Registry) NewGaugeVec(name, help string, labelKeys ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, "gauge", labelKeys)}
}

// With returns the gauge for one label-value tuple.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.child(values, func() renderable { return &Gauge{} }).(*Gauge)
}

// NewGaugeFunc registers a gauge whose value is computed by fn at scrape
// time — the right shape for values that already live under someone
// else's lock (queue depth, cache size).
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, "gauge", nil)
	f.child(nil, func() renderable { return gaugeFunc{fn} })
}

// NewHistogram registers and returns an unlabeled histogram over the
// given ascending bucket bounds (nil ⇒ DefBuckets; +Inf is implicit).
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	f := r.register(name, help, "histogram", nil)
	h := newHistogram(bounds)
	f.child(nil, func() renderable { return h })
	return h
}

func newHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("metrics: histogram bounds not strictly ascending")
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)),
	}
}

// --- rendering -------------------------------------------------------------

// sampleLine writes one exposition sample.
func sampleLine(w *strings.Builder, name, labels string, v float64) {
	w.WriteString(name)
	w.WriteString(labels)
	w.WriteByte(' ')
	w.WriteString(formatFloat(v))
	w.WriteByte('\n')
}

// formatFloat renders a sample value ('g' shortest round-trip; Prometheus
// accepts +Inf/-Inf/NaN spellings).
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Render returns the full registry in the Prometheus text exposition
// format: families in name order, each with # HELP and # TYPE headers,
// children in label-value order.
func (r *Registry) Render() string {
	r.mu.Lock()
	names := append([]string(nil), r.names...)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		f.mu.Lock()
		keys := make([]string, 0, len(f.children))
		for k := range f.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		children := make([]renderable, len(keys))
		for i, k := range keys {
			children[i] = f.children[k]
		}
		f.mu.Unlock()
		for i, k := range keys {
			children[i].render(&b, f.name, f.labelString(k))
		}
	}
	return b.String()
}

// escapeHelp escapes backslashes and newlines per the text format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// ContentType is the Content-Type of the text exposition format.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Handler serves the registry as a scrape endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		_, _ = w.Write([]byte(r.Render()))
	})
}
