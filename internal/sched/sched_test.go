package sched

import (
	"testing"

	"asyncsgd/internal/contention"
	"asyncsgd/internal/rng"
	"asyncsgd/internal/shm"
)

// counterBody returns a Func program that performs `iters` tagged
// mini-iterations (counter FAA + one read + one update), mimicking the
// tag protocol of the SGD workers.
func counterBody(id, iters int) shm.Program {
	return shm.Func(func(th *shm.T) {
		for i := 0; i < iters; i++ {
			th.Annotate(contention.Tag{Thread: id, Iter: i, Role: contention.RoleCounter})
			th.FAA(0, 1)
			th.Annotate(contention.Tag{Thread: id, Iter: i, Role: contention.RoleRead})
			th.Read(1)
			th.Annotate(contention.Tag{
				Thread: id, Iter: i, Role: contention.RoleUpdate,
				Coord: 0, First: true, Last: true,
			})
			th.FAA(1, 1)
		}
	})
}

func runWith(t *testing.T, pol shm.Policy, progs ...shm.Program) (*shm.Machine, shm.RunStats) {
	t.Helper()
	m, err := shm.New(shm.Config{MemSize: 2, Trace: true}, pol, progs...)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	return m, stats
}

func TestRoundRobinAlternates(t *testing.T) {
	m, stats := runWith(t, &RoundRobin{}, counterBody(0, 5), counterBody(1, 5))
	if stats.Completed != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	tr := m.Trace()
	// Strict alternation 0,1,0,1,... while both live.
	for i := 0; i+1 < 2*5*3; i += 2 {
		if tr[i].Thread == tr[i+1].Thread {
			t.Fatalf("steps %d,%d both thread %d", i, i+1, tr[i].Thread)
		}
	}
}

func TestRandomSchedulesEveryoneAndIsDeterministic(t *testing.T) {
	run := func() []shm.Step {
		m, stats := runWith(t, &Random{R: rng.New(5)},
			counterBody(0, 20), counterBody(1, 20), counterBody(2, 20))
		if stats.Completed != 3 {
			t.Fatalf("stats = %+v", stats)
		}
		return m.Trace()
	}
	tr1, tr2 := run(), run()
	if len(tr1) != len(tr2) {
		t.Fatal("same seed, different trace lengths")
	}
	counts := make(map[int]int)
	for i := range tr1 {
		if tr1[i].Thread != tr2[i].Thread {
			t.Fatal("same seed, different schedule")
		}
		counts[tr1[i].Thread]++
	}
	for id := 0; id < 3; id++ {
		if counts[id] == 0 {
			t.Errorf("thread %d never scheduled", id)
		}
	}
}

func TestGeometricPauseCompletesAll(t *testing.T) {
	pol := &GeometricPause{R: rng.New(7), PauseProb: 0.3, Resume: 0.2}
	_, stats := runWith(t, pol, counterBody(0, 30), counterBody(1, 30))
	if stats.Completed != 2 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestGeometricPauseAllPausedWakesEarliest(t *testing.T) {
	// PauseProb 1 pauses after every step; the policy must still make
	// progress by waking the earliest-resuming thread.
	pol := &GeometricPause{R: rng.New(9), PauseProb: 1, Resume: 0.5}
	_, stats := runWith(t, pol, counterBody(0, 10), counterBody(1, 10))
	if stats.Completed != 2 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestCrashAtCrashesAndContinues(t *testing.T) {
	pol := &CrashAt{Inner: &RoundRobin{}, Times: map[int]int{1: 5}}
	_, stats := runWith(t, pol, counterBody(0, 20), counterBody(1, 20))
	if stats.Crashed != 1 || stats.Completed != 1 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestStaleGradientHoldsVictimUpdate(t *testing.T) {
	pol := &StaleGradient{Victim: 1, DelayIters: 6}
	m, stats := runWith(t, pol, counterBody(0, 10), counterBody(1, 10))
	if stats.Completed != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	// Find the victim's first update in the trace; before it, thread 0
	// must have completed ≥ 6 full iterations (6 Last-updates).
	lastUpdates := 0
	for _, s := range m.Trace() {
		tg := s.Req.Tag
		if tg.Role == 0 {
			continue
		}
		if s.Thread == 1 && tg.Role == contention.RoleUpdate {
			break
		}
		if s.Thread == 0 && tg.Role == contention.RoleUpdate && tg.Last {
			lastUpdates++
		}
	}
	if lastUpdates < 6 {
		t.Errorf("victim released after only %d worker iterations, want ≥ 6", lastUpdates)
	}
}

func TestStaleGradientVictimGoneFallsBack(t *testing.T) {
	// Victim finishes immediately (0 iterations): the policy must degrade
	// to round-robin and complete everyone.
	pol := &StaleGradient{Victim: 1, DelayIters: 4}
	_, stats := runWith(t, pol, counterBody(0, 8), counterBody(1, 0))
	if stats.Completed != 2 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestMaxStaleInterposesStarts(t *testing.T) {
	pol := &MaxStale{Budget: 5}
	m, stats := runWith(t, pol, counterBody(0, 15), counterBody(1, 15))
	if stats.Completed != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	// Somewhere in the trace a victim update must be preceded by ≥ 5
	// other-thread counter claims since that victim's own claim.
	tr := m.Trace()
	bestGap := 0
	claimAt := map[int]int{} // thread -> index of its latest counter claim
	counts := map[int]int{}  // thread -> other-thread claims since its claim
	for _, s := range tr {
		tg := s.Req.Tag
		if tg.Role == 0 {
			continue
		}
		if tg.Role == contention.RoleCounter {
			claimAt[s.Thread] = 1
			counts[s.Thread] = 0
			for other := range counts {
				if other != s.Thread {
					counts[other]++
				}
			}
		}
		if tg.Role == contention.RoleUpdate && tg.First {
			if counts[s.Thread] > bestGap {
				bestGap = counts[s.Thread]
			}
		}
	}
	if bestGap < 5 {
		t.Errorf("max interposed starts = %d, want ≥ 5", bestGap)
	}
}

func TestMaxStaleSingleThreadDegenerates(t *testing.T) {
	pol := &MaxStale{Budget: 5}
	_, stats := runWith(t, pol, counterBody(0, 10))
	if stats.Completed != 1 {
		t.Errorf("stats = %+v", stats)
	}
}
