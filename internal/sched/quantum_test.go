package sched

import (
	"testing"

	"asyncsgd/internal/rng"
	"asyncsgd/internal/shm"
)

func TestQuantumRunsInBursts(t *testing.T) {
	pol := &Quantum{Q: 5}
	m, stats := runWith(t, pol, counterBody(0, 20), counterBody(1, 20))
	if stats.Completed != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	tr := m.Trace()
	// While both threads are live, context switches happen only at
	// quantum boundaries: count switches in the first 60 steps; with Q=5
	// there should be ≈12, not ≈59.
	switches := 0
	for i := 1; i < 60 && i < len(tr); i++ {
		if tr[i].Thread != tr[i-1].Thread {
			switches++
		}
	}
	if switches > 15 {
		t.Errorf("%d switches in 60 steps with Q=5, want ≈12", switches)
	}
	if switches == 0 {
		t.Error("no context switches at all")
	}
}

func TestQuantumRandomizedCompletesAll(t *testing.T) {
	pol := &Quantum{Q: 7, R: rng.New(3)}
	_, stats := runWith(t, pol, counterBody(0, 25), counterBody(1, 25), counterBody(2, 25))
	if stats.Completed != 3 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestQuantumZeroQTreatedAsOne(t *testing.T) {
	pol := &Quantum{Q: 0}
	_, stats := runWith(t, pol, counterBody(0, 5), counterBody(1, 5))
	if stats.Completed != 2 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestQuantumSurvivesThreadExit(t *testing.T) {
	// One thread finishes early; the quantum holder must hand over.
	pol := &Quantum{Q: 50}
	_, stats := runWith(t, pol, counterBody(0, 2), counterBody(1, 30))
	if stats.Completed != 2 {
		t.Errorf("stats = %+v", stats)
	}
}

var _ shm.Policy = (*Quantum)(nil)
