package sched

import (
	"asyncsgd/internal/rng"
	"asyncsgd/internal/shm"
)

// Quantum models OS-style preemptive scheduling: the running thread keeps
// the (virtual) core for a quantum of Q consecutive shared-memory steps,
// then the scheduler switches to another live thread (uniformly at random,
// or round-robin when R is nil). With Q ≫ iteration length this produces
// the bursty, low-overlap executions typical of real machines — the §8
// "why asynchronous SGD is fast in practice" regime, where staleness stays
// near the number of in-flight iterations rather than anywhere near an
// adversarial τmax.
type Quantum struct {
	Q int       // steps per quantum (≤ 0 treated as 1)
	R *rng.Rand // optional randomization of the next thread

	cur  int
	left int
	rr   RoundRobin
}

var _ shm.Policy = (*Quantum)(nil)

// Next implements shm.Policy.
func (p *Quantum) Next(v *shm.View) shm.Decision {
	q := p.Q
	if q <= 0 {
		q = 1
	}
	if p.left > 0 && v.Live(p.cur) {
		p.left--
		return shm.Decision{Thread: p.cur}
	}
	// Pick the next thread to receive a quantum.
	n := v.NumThreads()
	next := -1
	if p.R != nil {
		live := make([]int, 0, n)
		for i := 0; i < n; i++ {
			if v.Live(i) && i != p.cur {
				live = append(live, i)
			}
		}
		if len(live) == 0 && v.Live(p.cur) {
			next = p.cur
		} else if len(live) > 0 {
			next = live[p.R.Intn(len(live))]
		}
	} else {
		d := p.rr.Next(v)
		next = d.Thread
	}
	if next < 0 {
		return shm.Decision{Thread: -1}
	}
	p.cur = next
	p.left = q - 1
	return shm.Decision{Thread: next}
}
