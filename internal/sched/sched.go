// Package sched provides scheduling policies for the shm machine, from
// benign baselines (round-robin, uniform random, stochastic delays) to the
// adaptive adversaries the paper analyzes: the Section-5 stale-gradient
// adversary behind the Ω(τ) lower bound, and a generic maximum-staleness
// adversary operating under an interval-contention budget τmax (the regime
// of the Section-6 upper bounds).
//
// Adversaries identify the role of pending operations through the
// contention.Tag annotations attached by the SGD thread programs; this is
// consistent with the paper's strong adversary, which observes the
// algorithm's state and coin flips.
package sched

import (
	"sort"

	"asyncsgd/internal/contention"
	"asyncsgd/internal/rng"
	"asyncsgd/internal/shm"
)

// RoundRobin schedules live threads cyclically. It is the maximally fair
// baseline: staleness stays O(n).
type RoundRobin struct {
	last int
}

var _ shm.Policy = (*RoundRobin)(nil)

// Next implements shm.Policy.
func (p *RoundRobin) Next(v *shm.View) shm.Decision {
	n := v.NumThreads()
	for k := 1; k <= n; k++ {
		i := (p.last + k) % n
		if v.Live(i) {
			p.last = i
			return shm.Decision{Thread: i}
		}
	}
	return shm.Decision{Thread: -1}
}

// Random schedules a uniformly random live thread each step. This is the
// oblivious stochastic scheduler assumed by much of the prior Hogwild
// analysis (e.g. De Sa et al.).
type Random struct {
	R *rng.Rand
}

var _ shm.Policy = (*Random)(nil)

// Next implements shm.Policy.
func (p *Random) Next(v *shm.View) shm.Decision {
	n := v.NumThreads()
	live := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if v.Live(i) {
			live = append(live, i)
		}
	}
	if len(live) == 0 {
		return shm.Decision{Thread: -1}
	}
	return shm.Decision{Thread: live[p.R.Intn(len(live))]}
}

// GeometricPause schedules uniformly at random among unpaused live
// threads, and after every step pauses the stepped thread with probability
// PauseProb for a Geometric(Resume)-distributed number of steps. This
// models stochastic OS-style delays with geometric tails (the delay model
// of several prior works) without an adaptive adversary.
type GeometricPause struct {
	R         *rng.Rand
	PauseProb float64 // probability a thread is paused after a step
	Resume    float64 // geometric resume parameter in (0,1]

	pausedUntil []int
}

var _ shm.Policy = (*GeometricPause)(nil)

// Next implements shm.Policy.
func (p *GeometricPause) Next(v *shm.View) shm.Decision {
	n := v.NumThreads()
	if p.pausedUntil == nil {
		p.pausedUntil = make([]int, n)
	}
	now := v.Time()
	avail := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if v.Live(i) && p.pausedUntil[i] <= now {
			avail = append(avail, i)
		}
	}
	if len(avail) == 0 {
		// All live threads paused: wake the one with the earliest resume
		// time (time only advances on steps, so waiting is meaningless).
		best := -1
		for i := 0; i < n; i++ {
			if v.Live(i) && (best == -1 || p.pausedUntil[i] < p.pausedUntil[best]) {
				best = i
			}
		}
		if best == -1 {
			return shm.Decision{Thread: -1}
		}
		p.pausedUntil[best] = now
		avail = append(avail, best)
	}
	tid := avail[p.R.Intn(len(avail))]
	if p.R.Bernoulli(p.PauseProb) {
		p.pausedUntil[tid] = now + 1 + p.R.Geometric(p.Resume)
	}
	return shm.Decision{Thread: tid}
}

// CrashAt wraps an inner policy and crashes the given threads at the given
// machine times (thread id -> time). The adversary may crash at most n−1
// threads; excess crash requests are rejected by the machine.
type CrashAt struct {
	Inner shm.Policy
	Times map[int]int

	fired map[int]bool
}

var _ shm.Policy = (*CrashAt)(nil)

// Next implements shm.Policy.
func (p *CrashAt) Next(v *shm.View) shm.Decision {
	if p.fired == nil {
		p.fired = make(map[int]bool, len(p.Times))
	}
	var crash []int
	for tid, at := range p.Times {
		if !p.fired[tid] && v.Time() >= at {
			p.fired[tid] = true
			crash = append(crash, tid)
		}
	}
	// Map iteration order is random; d.Crash feeds the trajectory, so
	// two threads crashing at the same machine time must die in a fixed
	// order for runs to replay bit-identically.
	sort.Ints(crash)
	d := p.Inner.Next(v)
	for _, c := range crash {
		if d.Thread == c {
			// Re-pick a live thread other than the ones being crashed.
			d.Thread = pickOther(v, crash)
		}
	}
	d.Crash = append(d.Crash, crash...)
	return d
}

func pickOther(v *shm.View, exclude []int) int {
	ex := make(map[int]bool, len(exclude))
	for _, e := range exclude {
		ex[e] = true
	}
	for i := 0; i < v.NumThreads(); i++ {
		if v.Live(i) && !ex[i] {
			return i
		}
	}
	return -1
}

// tagOf extracts the contention tag of thread i's pending op, if any.
func tagOf(v *shm.View, i int) (contention.Tag, bool) {
	req, ok := v.Pending(i)
	if !ok || req.Tag.Role == 0 {
		return contention.Tag{}, false
	}
	return req.Tag, true
}

// gateBlocked reports whether thread i is parked at a gated-discipline
// synchronization read it cannot currently pass: the pending op is a
// RoleGate read whose register value is still below the threshold the
// worker encoded in Tag.Coord. A blocked thread only spins until some
// other thread publishes a completion, so scheduling it cannot advance
// the algorithm; the delay-injecting adversaries treat it as
// unschedulable — which is precisely how a bounded-staleness gate caps
// the delay τ they can inject (E16).
func gateBlocked(v *shm.View, i int) bool {
	req, ok := v.Pending(i)
	if !ok {
		return false
	}
	if req.Tag.Role != contention.RoleGate || req.Kind != shm.OpRead {
		return false
	}
	return v.Load(req.Addr) < float64(req.Tag.Coord)
}
