package sched

import (
	"asyncsgd/internal/contention"
	"asyncsgd/internal/shm"
)

// StaleGradient is the Section-5 adversary behind the paper's Ω(τ) lower
// bound (Theorem 5.1). With two threads it realizes exactly the strategy
// from the paper's analysis:
//
//  1. let the victim read the initial model and compute its gradient (its
//     pending operation becomes the first model update of the target
//     iteration — the adversary, being strong, can see this);
//  2. freeze the victim and let the other thread(s) execute DelayIters full
//     SGD iterations;
//  3. release the victim, which now merges a gradient computed DelayIters
//     iterations ago, wiping out part of the progress.
//
// After the stale update is applied the policy degenerates to round-robin.
type StaleGradient struct {
	Victim     int // thread whose gradient is delayed
	DelayIters int // full iterations by other threads while frozen

	// HoldRole selects the pending-operation role at which the victim is
	// frozen. The default (RoleUpdate) freezes between gradient
	// generation and application — the strongest point, which also
	// defeats staleness-aware step scaling because the victim's staleness
	// probe (RoleProbe) has already executed. Setting RoleProbe freezes
	// before the probe, modeling an oblivious delay that staleness-aware
	// algorithms can detect and damp (the §8 / related-work discussion).
	HoldRole contention.Role

	phase     int // 0 advance victim, 1 delay, 2 release, 3 after
	completed int // other-thread iterations completed during phase 1
	rr        RoundRobin
}

var _ shm.Policy = (*StaleGradient)(nil)

func (p *StaleGradient) holdRole() contention.Role {
	if p.HoldRole == 0 {
		return contention.RoleUpdate
	}
	return p.HoldRole
}

// Next implements shm.Policy.
func (p *StaleGradient) Next(v *shm.View) shm.Decision {
	if !v.Live(p.Victim) && p.phase < 3 {
		p.phase = 3
	}
	switch p.phase {
	case 0: // run the victim until it is about to perform the held op
		if tg, ok := tagOf(v, p.Victim); ok && tg.Role == p.holdRole() {
			p.phase = 1
			return p.Next(v)
		}
		if gateBlocked(v, p.Victim) {
			// The victim is parked at a discipline gate; only other
			// threads' publishes can unblock it.
			if tid := p.otherLive(v); tid >= 0 {
				return shm.Decision{Thread: tid}
			}
		}
		return shm.Decision{Thread: p.Victim}
	case 1: // interpose DelayIters full iterations by other threads
		if p.completed >= p.DelayIters {
			p.phase = 2
			return p.Next(v)
		}
		tid := p.otherLive(v)
		if tid < 0 { // nobody else can make progress; release the victim
			p.phase = 2
			return p.Next(v)
		}
		if tg, ok := tagOf(v, tid); ok &&
			tg.Role == contention.RoleUpdate && tg.Last {
			p.completed++
		}
		return shm.Decision{Thread: tid}
	case 2: // flush the victim's stale iteration
		tg, ok := tagOf(v, p.Victim)
		if ok && tg.Role == contention.RoleUpdate && tg.Last {
			p.phase = 3
		}
		return shm.Decision{Thread: p.Victim}
	default:
		return p.rr.Next(v)
	}
}

// otherLive returns a live non-victim thread that is not blocked at a
// discipline gate (round-robin), or -1. Gate-blocked threads cannot
// progress while the victim is held, so delaying against them is futile:
// a bounded-staleness gate exhausts the adversary after ~τ interposed
// iterations.
func (p *StaleGradient) otherLive(v *shm.View) int {
	n := v.NumThreads()
	for k := 1; k <= n; k++ {
		i := (p.rr.last + k) % n
		if i != p.Victim && v.Live(i) && !gateBlocked(v, i) {
			p.rr.last = i
			return i
		}
	}
	return -1
}

// MaxStale is a generic adaptive adversary operating under an interval-
// contention budget: it repeatedly picks a victim thread, freezes the
// victim right before its first model update, lets the remaining threads
// start up to Budget fresh iterations, then releases the victim — and
// rotates to the next victim. This produces executions whose measured τmax
// is ≈ Budget + n while keeping every thread live, i.e. the worst-case
// regime of Theorem 6.5 / Corollary 6.7.
type MaxStale struct {
	Budget int // other-iteration starts to interpose per held iteration

	victim int
	phase  int // 0 advance victim, 1 delay, 2 release
	starts int // other-thread iteration starts during current hold
	rr     RoundRobin
}

var _ shm.Policy = (*MaxStale)(nil)

// Next implements shm.Policy.
func (p *MaxStale) Next(v *shm.View) shm.Decision {
	n := v.NumThreads()
	if n == 1 {
		return p.rr.Next(v)
	}
	// Rotate to a live victim if the current one finished or crashed.
	if !v.Live(p.victim) {
		if !p.rotate(v) {
			return p.rr.Next(v)
		}
	}
	switch p.phase {
	case 0:
		if tg, ok := tagOf(v, p.victim); ok && tg.Role == contention.RoleUpdate {
			p.phase, p.starts = 1, 0
			return p.Next(v)
		}
		if gateBlocked(v, p.victim) {
			// Advance someone else until a publish unblocks the victim.
			if tid := p.otherLive(v); tid >= 0 {
				return shm.Decision{Thread: tid}
			}
		}
		return shm.Decision{Thread: p.victim}
	case 1:
		if p.starts >= p.Budget {
			p.phase = 2
			return p.Next(v)
		}
		tid := p.otherLive(v)
		if tid < 0 {
			p.phase = 2
			return p.Next(v)
		}
		if tg, ok := tagOf(v, tid); ok && tg.Role == contention.RoleCounter {
			p.starts++
		}
		return shm.Decision{Thread: tid}
	default: // release
		tg, ok := tagOf(v, p.victim)
		if ok && tg.Role == contention.RoleUpdate && tg.Last {
			cur := p.victim
			p.rotate(v)
			p.phase = 0
			return shm.Decision{Thread: cur}
		}
		if !ok {
			// Victim has no pending op classification; just step it.
			return shm.Decision{Thread: p.victim}
		}
		return shm.Decision{Thread: p.victim}
	}
}

func (p *MaxStale) rotate(v *shm.View) bool {
	n := v.NumThreads()
	for k := 1; k <= n; k++ {
		i := (p.victim + k) % n
		if v.Live(i) {
			p.victim = i
			p.phase = 0
			return true
		}
	}
	return false
}

// otherLive returns a live non-victim thread that is not blocked at a
// discipline gate, or -1 (at which point holding the victim any longer is
// futile and the adversary releases it).
func (p *MaxStale) otherLive(v *shm.View) int {
	n := v.NumThreads()
	for k := 1; k <= n; k++ {
		i := (p.rr.last + k) % n
		if i != p.victim && v.Live(i) && !gateBlocked(v, i) {
			p.rr.last = i
			return i
		}
	}
	return -1
}
