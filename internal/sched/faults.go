package sched

import (
	"asyncsgd/internal/contention"
	"asyncsgd/internal/shm"
)

// CrashPoint selects where inside an SGD iteration the Faulty adversary
// kills a thread. The points are recognized from the victim's *pending*
// operation, which the machine discards on crash — so the kill always
// lands before that operation executes.
type CrashPoint uint8

const (
	// CrashAtBoundary kills the victim while its pending operation is the
	// iteration-claiming fetch&add: the claim is never taken, so the
	// thread dies holding nothing. The benign crash point — gated runs
	// need no recovery from it.
	CrashAtBoundary CrashPoint = iota
	// CrashAtGate kills the victim while it waits at a gated discipline's
	// entry or publish read. Under bounded staleness / epoch fencing the
	// victim has already announced a claim it will never publish: without
	// core.EpochConfig.CrashRecovery the done counter sticks and every
	// survivor deadlocks at the gate.
	CrashAtGate
	// CrashHoldingTicket kills the victim while its pending operation is
	// a model update fetch&add — mid-flight, view taken, ticket claimed
	// and unpublished, updates partially applied. The worst case the
	// ticket-reclamation protocol exists for.
	CrashHoldingTicket
)

// String returns the crash-point name.
func (p CrashPoint) String() string {
	switch p {
	case CrashAtBoundary:
		return "boundary"
	case CrashAtGate:
		return "gate"
	case CrashHoldingTicket:
		return "ticket"
	default:
		return "CrashPoint(?)"
	}
}

// ThreadCrash is one planned kill: crash Thread the first time its
// pending operation matches Point with a local iteration ≥ AfterIters.
type ThreadCrash struct {
	Thread     int
	AfterIters int
	Point      CrashPoint
}

// Faulty is the crash/rejoin adversary: it schedules live threads
// round-robin (fair, so results isolate the effect of the crashes) and
// executes a deterministic crash plan against the thread programs'
// contention tags. Rejoining is modeled with spare threads: the top
// Spares thread ids are parked — never scheduled — until a crash fires,
// whereupon the lowest parked spare is activated RejoinDelay machine
// steps later. A spare is an ordinary worker program (the machine needs
// no notion of restart); activating one is exactly a replacement worker
// joining the computation.
//
// The plan is fully deterministic: no randomness, every decision a
// function of the machine view, so fault sweeps stay bit-reproducible.
type Faulty struct {
	Crashes     []ThreadCrash
	Spares      int // count of top thread ids parked as replacements
	RejoinDelay int // steps between a crash firing and a spare activating

	init       bool
	fired      []bool
	parked     []bool
	activateAt []int // machine time at which parked spare i unparks; -1 = unscheduled
	last       int
}

var _ shm.Policy = (*Faulty)(nil)

// Next implements shm.Policy.
func (p *Faulty) Next(v *shm.View) shm.Decision {
	n := v.NumThreads()
	if !p.init {
		p.init = true
		p.fired = make([]bool, len(p.Crashes))
		p.parked = make([]bool, n)
		p.activateAt = make([]int, n)
		for i := range p.activateAt {
			p.activateAt[i] = -1
		}
		for k := 0; k < p.Spares && k < n; k++ {
			p.parked[n-1-k] = true
		}
	}
	now := v.Time()

	// Activate spares whose rejoin delay has elapsed.
	for i := 0; i < n; i++ {
		if p.parked[i] && p.activateAt[i] >= 0 && now >= p.activateAt[i] {
			p.parked[i] = false
		}
	}

	// Fire due crashes. Never crash the last live thread (the model
	// forbids crashing all n) and never a parked spare.
	var crash []int
	for k, c := range p.Crashes {
		if p.fired[k] || c.Thread < 0 || c.Thread >= n ||
			!v.Live(c.Thread) || p.parked[c.Thread] {
			continue
		}
		if v.LiveCount()-len(crash) <= 1 {
			continue
		}
		tag, ok := tagOf(v, c.Thread)
		if !ok || tag.Iter < c.AfterIters || !p.pointMatches(v, c.Thread, tag, c.Point) {
			continue
		}
		p.fired[k] = true
		crash = append(crash, c.Thread)
		// Schedule the lowest unscheduled parked spare as the replacement.
		for i := 0; i < n; i++ {
			if p.parked[i] && p.activateAt[i] < 0 {
				p.activateAt[i] = now + p.RejoinDelay
				if p.RejoinDelay == 0 {
					p.parked[i] = false
				}
				break
			}
		}
	}

	crashing := func(tid int) bool {
		for _, c := range crash {
			if c == tid {
				return true
			}
		}
		return false
	}

	// Round-robin over live, unparked, not-being-crashed threads.
	for k := 1; k <= n; k++ {
		i := (p.last + k) % n
		if v.Live(i) && !p.parked[i] && !crashing(i) {
			p.last = i
			return shm.Decision{Thread: i, Crash: crash}
		}
	}
	// Liveness fallback: everything schedulable is parked — unpark the
	// earliest spare rather than stall the machine.
	for i := 0; i < n; i++ {
		if v.Live(i) && p.parked[i] && !crashing(i) {
			p.parked[i] = false
			p.last = i
			return shm.Decision{Thread: i, Crash: crash}
		}
	}
	return shm.Decision{Thread: -1, Crash: crash}
}

// pointMatches reports whether thread tid's pending operation is at the
// given crash point.
func (p *Faulty) pointMatches(v *shm.View, tid int, tag contention.Tag, pt CrashPoint) bool {
	req, ok := v.Pending(tid)
	if !ok {
		return false
	}
	switch pt {
	case CrashAtBoundary:
		return tag.Role == contention.RoleCounter
	case CrashAtGate:
		// Only the spin *reads* — never the announce write, whose loss
		// would open the documented unrecoverable window (a claim taken
		// but not yet announced).
		return tag.Role == contention.RoleGate && req.Kind == shm.OpRead
	case CrashHoldingTicket:
		return tag.Role == contention.RoleUpdate
	default:
		return false
	}
}
