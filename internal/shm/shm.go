// Package shm implements the asynchronous shared-memory model of the
// paper (Section 2): n threads communicate through atomic registers
// supporting read, write, fetch&add and compare&swap; the interleaving of
// their shared-memory steps is chosen by an adversarial scheduler; time is
// measured in scheduled shared-memory steps; the adversary may crash up to
// n−1 threads; memory is sequentially consistent.
//
// The machine is a deterministic discrete-event simulator. Each thread is a
// Program — a resumable coroutine that, when granted a step, consumes the
// result of its previous operation and issues the next one. The scheduling
// Policy sees every pending operation including its operands and tags
// (hence the threads' local coin flips, making it the paper's *strong
// adaptive* adversary) and full memory contents, and picks which pending
// operation executes next. Local computation between shared-memory
// operations is free, exactly as in the model.
//
// For ergonomic thread bodies, Func adapts an ordinary function using
// blocking operation calls into a Program (see funcprog.go).
package shm

import (
	"errors"
	"fmt"
)

// OpKind enumerates the atomic register operations of the model.
type OpKind uint8

// Supported atomic operations. The paper's Algorithm 1 needs only OpRead
// and OpFAA; OpWrite and OpCAS are provided for baselines and tests.
const (
	OpRead OpKind = iota + 1
	OpWrite
	OpFAA
	OpCAS
)

// String returns the conventional name of the operation.
func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpFAA:
		return "fetch&add"
	case OpCAS:
		return "compare&swap"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// Role classifies a tagged operation within the SGD annotation schema the
// thread programs and scheduling policies share. The vocabulary is defined
// here — rather than in internal/contention, which interprets it — so that
// Request can embed the annotation as a concrete struct: with Tag typed
// `any`, every issued operation boxed a 40-byte struct into an interface,
// one heap allocation per simulated step on the machine's hot path.
// The zero Role marks an untagged operation.
type Role uint8

// Operation roles. See internal/contention for the full semantics; the
// names are re-exported there and policies normally refer to the
// contention aliases.
const (
	RoleNone    Role = iota // untagged operation
	RoleCounter             // iteration-claiming fetch&add on the shared counter
	RoleRead                // read of one model coordinate (view assembly)
	RoleUpdate              // fetch&add applying one gradient coordinate
	RoleProbe               // auxiliary counter read (staleness probe)
	RoleGate                // gated-discipline synchronization op
)

// String returns the role name.
func (r Role) String() string {
	switch r {
	case RoleNone:
		return "none"
	case RoleCounter:
		return "counter"
	case RoleRead:
		return "read"
	case RoleUpdate:
		return "update"
	case RoleProbe:
		return "probe"
	case RoleGate:
		return "gate"
	default:
		return fmt.Sprintf("Role(%d)", uint8(r))
	}
}

// Tag annotates one shared-memory operation with its place in the SGD
// execution. Thread is the issuing thread; Iter is the thread-local
// iteration number (0-based); Coord is the model coordinate for reads and
// updates (and carries the done-counter threshold for gate operations);
// First/Last mark the first and last model update of the iteration (First
// defines the paper's total order on iterations). The zero Tag (Role ==
// RoleNone) means "untagged".
type Tag struct {
	Thread int
	Iter   int
	Role   Role
	Coord  int
	First  bool
	Last   bool
}

// Request is one pending shared-memory operation issued by a thread.
type Request struct {
	Kind OpKind
	Addr int     // register index
	Val  float64 // write value / fetch&add delta / CAS new value
	Exp  float64 // CAS expected value
	Tag  Tag     // annotation, visible to the scheduling policy (zero = none)
}

// Result is the outcome of an executed operation, delivered to the issuing
// thread at its next step grant.
type Result struct {
	Valid bool    // false only for the synthetic "result" before a thread's first op
	Val   float64 // read value; prior value for write/FAA/CAS
	OK    bool    // CAS success indicator
	Time  int     // machine time (step index, 1-based) at which the op executed
}

// Step records one executed operation for tracing and analysis.
type Step struct {
	Time   int // 1-based step index
	Thread int
	Req    Request
	Res    Result
}

// Program is a resumable thread. Next receives the Result of the thread's
// previously executed operation (Valid=false on the first call) and returns
// the next operation to issue, or done=true when the thread terminates.
// Implementations must be deterministic given their inputs; any randomness
// must come from a seeded generator owned by the program.
type Program interface {
	Next(prev Result) (req Request, done bool)
}

// InplaceProgram is an optional Program extension for hot-path thread
// bodies: NextInto writes the thread's next request directly into *req —
// the machine passes a pointer to the thread's pending slot — instead of
// returning it by value. This removes two Request copies per step (the
// return-value fill and the pending-slot store; Request is several words
// now that Tag is embedded concretely). Implementations must overwrite
// every field they rely on: *req still holds the previously issued
// request on entry. When NextInto returns true the thread has terminated
// and the slot's contents are ignored.
//
// The machine detects the extension once at construction; Programs that
// don't implement it go through Next as before.
type InplaceProgram interface {
	Program
	NextInto(prev Result, req *Request) (done bool)
}

// Stopper is implemented by Programs that own background resources (the
// Func adapter's goroutine). The machine calls Stop on every program that
// implements it when Run returns.
type Stopper interface {
	Stop()
}

// View is the scheduler's complete observation of the machine: the current
// time, every pending request with operands and tags, thread liveness, and
// the full memory contents. This is the strong adaptive adversary of the
// paper: nothing is hidden from it.
type View struct {
	m *Machine
}

// Time returns the number of shared-memory steps executed so far.
func (v *View) Time() int { return v.m.steps }

// NumThreads returns the number of threads in the machine.
func (v *View) NumThreads() int { return len(v.m.progs) }

// Pending returns thread i's pending request. ok is false if the thread has
// terminated or crashed.
func (v *View) Pending(i int) (Request, bool) {
	if v.m.done[i] || v.m.crashed[i] {
		return Request{}, false
	}
	return v.m.pending[i], true
}

// Done reports whether thread i has terminated normally.
func (v *View) Done(i int) bool { return v.m.done[i] }

// Crashed reports whether thread i has been crashed by the adversary.
func (v *View) Crashed(i int) bool { return v.m.crashed[i] }

// Live reports whether thread i is schedulable (not done, not crashed).
func (v *View) Live(i int) bool { return !v.m.done[i] && !v.m.crashed[i] }

// LiveCount returns the number of schedulable threads.
func (v *View) LiveCount() int { return v.m.live }

// Load lets the adversary inspect register addr.
func (v *View) Load(addr int) float64 { return v.m.mem[addr] }

// MemSize returns the number of registers.
func (v *View) MemSize() int { return len(v.m.mem) }

// Decision is a Policy's scheduling choice: execute thread Thread's pending
// operation, after crashing the listed threads. Crashing all live threads
// (leaving Thread invalid) halts the run; otherwise Thread must identify a
// live, pending thread.
type Decision struct {
	Thread int
	Crash  []int
}

// Policy chooses the next step. Implementations receive a View valid only
// for the duration of the call.
type Policy interface {
	Next(v *View) Decision
}

// Config parameterizes a Machine.
type Config struct {
	MemSize  int        // number of registers, all initially 0
	MaxSteps int        // stop after this many steps (0 = unlimited)
	OnStep   func(Step) // streaming step hook (contention tracker etc.)
	Trace    bool       // record the full step log (memory-heavy)
	InitMem  []float64  // optional initial register contents

	// CrashFlagBase, when positive, designates a failure-detector region:
	// the instant the adversary crashes thread i, the machine writes
	// mem[CrashFlagBase+i] = 1 (bounds permitting). Survivor programs can
	// read these registers to learn which peers are dead — the perfect
	// failure detector the crash-recovery protocols in internal/core build
	// on. Zero (the default) disables the region.
	CrashFlagBase int
}

// RunStats summarizes a completed run.
type RunStats struct {
	Steps     int
	Completed int // threads that terminated normally
	Crashed   int // threads crashed by the adversary
	Stalled   int // live threads still pending when the run stopped (MaxSteps)
}

// Machine is one simulated shared-memory execution. Create with New, drive
// with Run. A Machine is single-use and not safe for concurrent use.
type Machine struct {
	cfg        Config
	policy     Policy
	progs      []Program
	inplace    []InplaceProgram // inplace[i] non-nil ⇒ progs[i] supports NextInto
	mem        []float64
	pending    []Request
	done       []bool
	crashed    []bool
	steps      int
	live       int // schedulable threads, maintained incrementally
	numCrashed int
	trace      []Step
	ran        bool
}

// Validation errors returned by Run.
var (
	ErrBadThread   = errors.New("shm: policy chose an unschedulable thread")
	ErrBadAddress  = errors.New("shm: operation address out of range")
	ErrNoThreads   = errors.New("shm: machine has no programs")
	ErrAlreadyRan  = errors.New("shm: machine already ran")
	ErrTooManyDead = errors.New("shm: adversary may crash at most n-1 threads")
)

// New builds a machine over cfg with the given policy and thread programs.
func New(cfg Config, policy Policy, progs ...Program) (*Machine, error) {
	if len(progs) == 0 {
		return nil, ErrNoThreads
	}
	if cfg.MemSize <= 0 && len(cfg.InitMem) == 0 {
		return nil, errors.New("shm: MemSize must be positive")
	}
	mem := make([]float64, cfg.MemSize)
	if len(cfg.InitMem) > 0 {
		if cfg.MemSize == 0 {
			mem = make([]float64, len(cfg.InitMem))
		} else if len(cfg.InitMem) > cfg.MemSize {
			return nil, errors.New("shm: InitMem larger than MemSize")
		}
		copy(mem, cfg.InitMem)
	}
	inplace := make([]InplaceProgram, len(progs))
	for i, p := range progs {
		if ip, ok := p.(InplaceProgram); ok {
			inplace[i] = ip
		}
	}
	return &Machine{
		cfg:     cfg,
		policy:  policy,
		progs:   progs,
		inplace: inplace,
		mem:     mem,
		pending: make([]Request, len(progs)),
		done:    make([]bool, len(progs)),
		crashed: make([]bool, len(progs)),
	}, nil
}

// Mem returns the machine's register file. After Run it holds the final
// memory contents. The returned slice aliases machine state; treat it as
// read-only.
func (m *Machine) Mem() []float64 { return m.mem }

// Steps returns the number of executed shared-memory steps so far.
func (m *Machine) Steps() int { return m.steps }

// Trace returns the recorded step log (empty unless Config.Trace).
func (m *Machine) Trace() []Step { return m.trace }

// Run executes the machine until every live thread terminates, the policy
// crashes all remaining threads, or MaxSteps is reached. It releases any
// Func-adapted goroutines before returning.
//
// The grant→execute→record loop is flattened into a single function so the
// per-step constant stays small: the machine maintains its live count
// incrementally (no O(n) scan per step), skips crash processing when the
// decision carries none, builds the Step record only for consumers (trace,
// OnStep), and allocates nothing per step — the concrete Request.Tag means
// issuing an annotated operation is a plain struct copy.
//
//asgd:hotpath
func (m *Machine) Run() (RunStats, error) {
	if m.ran {
		return RunStats{}, ErrAlreadyRan
	}
	m.ran = true
	//asgdvet:allow hotalloc(one closure per run, not per step; the per-step loop below is allocation-free)
	defer func() {
		for _, p := range m.progs {
			if s, ok := p.(Stopper); ok {
				s.Stop()
			}
		}
	}()

	// Prime every thread with its first request.
	for i, p := range m.progs {
		if ip := m.inplace[i]; ip != nil {
			if ip.NextInto(Result{}, &m.pending[i]) {
				m.done[i] = true
			}
			continue
		}
		req, done := p.Next(Result{})
		if done {
			m.done[i] = true
			continue
		}
		m.pending[i] = req
	}
	m.live = 0
	for i := range m.progs {
		if !m.done[i] && !m.crashed[i] {
			m.live++
		}
	}

	var (
		view     = &View{m: m}
		policy   = m.policy
		mem      = m.mem
		maxSteps = m.cfg.MaxSteps
		hook     = m.cfg.OnStep
		tracing  = m.cfg.Trace
	)
	for m.live > 0 && (maxSteps == 0 || m.steps < maxSteps) {
		d := policy.Next(view)
		if len(d.Crash) > 0 {
			if err := m.applyCrashes(d.Crash); err != nil {
				return m.stats(), err
			}
			if m.live == 0 {
				break
			}
		}
		tid := d.Thread
		if tid < 0 || tid >= len(m.progs) || m.done[tid] || m.crashed[tid] {
			return m.stats(), fmt.Errorf("thread %d at step %d: %w",
				tid, m.steps, ErrBadThread)
		}

		// Execute the granted operation in place.
		req := &m.pending[tid]
		if req.Addr < 0 || req.Addr >= len(mem) {
			return m.stats(), fmt.Errorf("thread %d op %s addr %d (mem %d): %w",
				tid, req.Kind, req.Addr, len(mem), ErrBadAddress)
		}
		m.steps++
		res := Result{Valid: true, Time: m.steps}
		old := mem[req.Addr]
		switch req.Kind {
		case OpRead:
			res.Val = old
		case OpWrite:
			mem[req.Addr] = req.Val
			res.Val = old
		case OpFAA:
			mem[req.Addr] = old + req.Val
			res.Val = old
		case OpCAS:
			res.Val = old
			if old == req.Exp {
				mem[req.Addr] = req.Val
				res.OK = true
			}
		default:
			return m.stats(), fmt.Errorf("thread %d: unknown op kind %d", tid, req.Kind)
		}
		if tracing {
			m.trace = append(m.trace, Step{Time: m.steps, Thread: tid, Req: *req, Res: res})
		}
		if hook != nil {
			hook(Step{Time: m.steps, Thread: tid, Req: *req, Res: res})
		}
		var done bool
		if ip := m.inplace[tid]; ip != nil {
			done = ip.NextInto(res, req)
		} else {
			var next Request
			next, done = m.progs[tid].Next(res)
			if !done {
				m.pending[tid] = next
			}
		}
		if done {
			m.done[tid] = true
			m.live--
		}
	}
	return m.stats(), nil
}

func (m *Machine) applyCrashes(crash []int) error {
	for _, i := range crash {
		if i < 0 || i >= len(m.progs) || m.done[i] || m.crashed[i] {
			continue
		}
		// The model allows crashing at most n-1 threads overall; enforce
		// it so adversaries cannot trivially halt progress forever.
		if m.numCrashed >= len(m.progs)-1 {
			return ErrTooManyDead
		}
		m.crashed[i] = true
		m.numCrashed++
		m.live--
		if base := m.cfg.CrashFlagBase; base > 0 && base+i < len(m.mem) {
			m.mem[base+i] = 1
		}
	}
	return nil
}

func (m *Machine) stats() RunStats {
	s := RunStats{Steps: m.steps}
	for i := range m.progs {
		switch {
		case m.done[i]:
			s.Completed++
		case m.crashed[i]:
			s.Crashed++
		default:
			s.Stalled++
		}
	}
	return s
}
