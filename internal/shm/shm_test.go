package shm

import (
	"errors"
	"testing"
)

// rrPolicy is a minimal round-robin policy for tests.
type rrPolicy struct{ last int }

func (p *rrPolicy) Next(v *View) Decision {
	n := v.NumThreads()
	for k := 1; k <= n; k++ {
		i := (p.last + k) % n
		if v.Live(i) {
			p.last = i
			return Decision{Thread: i}
		}
	}
	return Decision{Thread: -1}
}

// fixedPolicy always schedules one thread.
type fixedPolicy struct{ tid int }

func (p fixedPolicy) Next(*View) Decision { return Decision{Thread: p.tid} }

// crashPolicy crashes a thread at a given step, then round-robins.
type crashPolicy struct {
	rr      rrPolicy
	victim  int
	atStep  int
	crashed bool
}

func (p *crashPolicy) Next(v *View) Decision {
	d := p.rr.Next(v)
	if !p.crashed && v.Time() >= p.atStep {
		p.crashed = true
		d.Crash = []int{p.victim}
		if d.Thread == p.victim {
			// pick another live thread
			for i := 0; i < v.NumThreads(); i++ {
				if i != p.victim && v.Live(i) {
					d.Thread = i
					break
				}
			}
		}
	}
	return d
}

func TestSingleThreadCounter(t *testing.T) {
	prog := Func(func(th *T) {
		for i := 0; i < 10; i++ {
			th.FAA(0, 1)
		}
	})
	m, err := New(Config{MemSize: 1}, &rrPolicy{}, prog)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Steps != 10 || stats.Completed != 1 {
		t.Errorf("stats = %+v", stats)
	}
	if m.Mem()[0] != 10 {
		t.Errorf("counter = %v", m.Mem()[0])
	}
}

func TestFAAReturnsPriorAndIsAtomic(t *testing.T) {
	const n, per = 4, 25
	seen := make(map[float64]bool)
	progs := make([]Program, n)
	for i := 0; i < n; i++ {
		progs[i] = Func(func(th *T) {
			for k := 0; k < per; k++ {
				old := th.FAA(0, 1)
				seen[old] = true // machine is sequential: no data race
			}
		})
	}
	m, err := New(Config{MemSize: 1}, &rrPolicy{}, progs...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Mem()[0] != n*per {
		t.Fatalf("total = %v, want %d", m.Mem()[0], n*per)
	}
	// fetch&add priors must be exactly 0..n*per-1 with no duplicates:
	// the defining property of an atomic counter.
	for k := 0; k < n*per; k++ {
		if !seen[float64(k)] {
			t.Fatalf("prior value %d never observed", k)
		}
	}
}

func TestReadWriteCAS(t *testing.T) {
	var gotPrior float64
	var swapped, swapped2 bool
	prog := Func(func(th *T) {
		th.Write(2, 5)
		if got := th.Read(2); got != 5 {
			t.Errorf("read = %v", got)
		}
		gotPrior, swapped = th.CAS(2, 5, 9)
		_, swapped2 = th.CAS(2, 5, 11) // stale expected
	})
	m, err := New(Config{MemSize: 3}, &rrPolicy{}, prog)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if gotPrior != 5 || !swapped {
		t.Errorf("CAS prior=%v swapped=%v", gotPrior, swapped)
	}
	if swapped2 {
		t.Error("stale CAS succeeded")
	}
	if m.Mem()[2] != 9 {
		t.Errorf("mem[2] = %v", m.Mem()[2])
	}
}

func TestInitMem(t *testing.T) {
	var read float64
	prog := Func(func(th *T) { read = th.Read(1) })
	m, err := New(Config{MemSize: 2, InitMem: []float64{3, 7}}, &rrPolicy{}, prog)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if read != 7 {
		t.Errorf("read initial mem = %v", read)
	}
}

func TestMaxStepsStopsAndReleasesGoroutines(t *testing.T) {
	prog := Func(func(th *T) {
		for { // infinite loop; must be stopped by MaxSteps + Stop
			th.FAA(0, 1)
		}
	})
	m, err := New(Config{MemSize: 1, MaxSteps: 7}, &rrPolicy{}, prog)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Steps != 7 || stats.Stalled != 1 {
		t.Errorf("stats = %+v", stats)
	}
	if m.Mem()[0] != 7 {
		t.Errorf("counter = %v", m.Mem()[0])
	}
}

func TestCrashedThreadNeverRunsAgain(t *testing.T) {
	mk := func() Program {
		return Func(func(th *T) {
			for i := 0; i < 50; i++ {
				th.FAA(0, 1)
			}
		})
	}
	p := &crashPolicy{victim: 0, atStep: 10}
	m, err := New(Config{MemSize: 1}, p, mk(), mk())
	if err != nil {
		t.Fatal(err)
	}
	stats, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Crashed != 1 || stats.Completed != 1 {
		t.Errorf("stats = %+v", stats)
	}
	// Thread 1 contributes all 50; thread 0 contributed some prefix < 50.
	if m.Mem()[0] >= 100 || m.Mem()[0] < 50 {
		t.Errorf("counter = %v", m.Mem()[0])
	}
}

func TestCannotCrashAllThreads(t *testing.T) {
	prog := Func(func(th *T) { th.FAA(0, 1) })
	pol := &crashPolicy{victim: 0, atStep: 0}
	m, err := New(Config{MemSize: 1}, pol, prog)
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Run()
	if !errors.Is(err, ErrTooManyDead) {
		t.Errorf("err = %v, want ErrTooManyDead", err)
	}
}

func TestBadPolicyThreadRejected(t *testing.T) {
	prog := Func(func(th *T) { th.FAA(0, 1) })
	m, err := New(Config{MemSize: 1}, fixedPolicy{tid: 5}, prog)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); !errors.Is(err, ErrBadThread) {
		t.Errorf("err = %v, want ErrBadThread", err)
	}
}

func TestBadAddressRejected(t *testing.T) {
	prog := Func(func(th *T) { th.Read(99) })
	m, err := New(Config{MemSize: 1}, &rrPolicy{}, prog)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); !errors.Is(err, ErrBadAddress) {
		t.Errorf("err = %v, want ErrBadAddress", err)
	}
}

func TestRunTwiceRejected(t *testing.T) {
	prog := Func(func(th *T) { th.FAA(0, 1) })
	m, err := New(Config{MemSize: 1}, &rrPolicy{}, prog)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); !errors.Is(err, ErrAlreadyRan) {
		t.Errorf("second Run err = %v", err)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{MemSize: 1}, &rrPolicy{}); !errors.Is(err, ErrNoThreads) {
		t.Errorf("no programs err = %v", err)
	}
	if _, err := New(Config{}, &rrPolicy{}, Func(func(*T) {})); err == nil {
		t.Error("zero MemSize accepted")
	}
	if _, err := New(Config{MemSize: 1, InitMem: []float64{1, 2}},
		&rrPolicy{}, Func(func(*T) {})); err == nil {
		t.Error("oversized InitMem accepted")
	}
}

func TestTraceAndOnStep(t *testing.T) {
	var hookSteps []Step
	prog := Func(func(th *T) {
		th.Annotate(Tag{Role: RoleCounter, Iter: 7})
		th.FAA(0, 2)
		th.Annotate(Tag{})
		th.Read(0)
	})
	m, err := New(Config{
		MemSize: 1, Trace: true,
		OnStep: func(s Step) { hookSteps = append(hookSteps, s) },
	}, &rrPolicy{}, prog)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	tr := m.Trace()
	if len(tr) != 2 || len(hookSteps) != 2 {
		t.Fatalf("trace %d hook %d", len(tr), len(hookSteps))
	}
	if tr[0].Req.Kind != OpFAA || tr[0].Req.Tag != (Tag{Role: RoleCounter, Iter: 7}) {
		t.Errorf("step0 = %+v", tr[0].Req)
	}
	if tr[1].Req.Kind != OpRead || tr[1].Req.Tag != (Tag{}) {
		t.Errorf("step1 = %+v", tr[1].Req)
	}
	if tr[0].Time != 1 || tr[1].Time != 2 {
		t.Errorf("times = %d, %d", tr[0].Time, tr[1].Time)
	}
}

// Sequential consistency smoke test: with two writers to distinct
// registers, every interleaving leaves both final values in place, and a
// reader never observes a value that was never written.
func TestSequentialConsistencySmoke(t *testing.T) {
	writer := func(addr int, v float64) Program {
		return Func(func(th *T) { th.Write(addr, v) })
	}
	var r1, r2 float64
	reader := Func(func(th *T) {
		r1 = th.Read(0)
		r2 = th.Read(1)
	})
	m, err := New(Config{MemSize: 2}, &rrPolicy{}, writer(0, 1), writer(1, 2), reader)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Mem()[0] != 1 || m.Mem()[1] != 2 {
		t.Errorf("final mem = %v", m.Mem())
	}
	if (r1 != 0 && r1 != 1) || (r2 != 0 && r2 != 2) {
		t.Errorf("reader saw impossible values r1=%v r2=%v", r1, r2)
	}
}

func TestOpKindString(t *testing.T) {
	for k, want := range map[OpKind]string{
		OpRead: "read", OpWrite: "write", OpFAA: "fetch&add",
		OpCAS: "compare&swap", OpKind(99): "OpKind(99)",
	} {
		if got := k.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", k, got, want)
		}
	}
}

func TestViewAccessors(t *testing.T) {
	var sawPending bool
	pol := policyFunc(func(v *View) Decision {
		if v.NumThreads() != 2 {
			t.Errorf("NumThreads = %d", v.NumThreads())
		}
		if v.MemSize() != 3 {
			t.Errorf("MemSize = %d", v.MemSize())
		}
		if req, ok := v.Pending(0); ok && req.Kind == OpFAA {
			sawPending = true
		}
		_ = v.Load(0)
		_ = v.LiveCount()
		for i := 0; i < v.NumThreads(); i++ {
			if v.Live(i) {
				return Decision{Thread: i}
			}
		}
		return Decision{Thread: -1}
	})
	mk := func() Program { return Func(func(th *T) { th.FAA(0, 1) }) }
	m, err := New(Config{MemSize: 3}, pol, mk(), mk())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if !sawPending {
		t.Error("policy never observed a pending FAA")
	}
}

type policyFunc func(*View) Decision

func (f policyFunc) Next(v *View) Decision { return f(v) }
