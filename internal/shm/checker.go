package shm

import (
	"fmt"
)

// CheckTrace validates a recorded execution trace against the sequential
// consistency semantics of the register model: replaying the operations in
// trace order from initMem, every operation's recorded result (read value,
// fetch&add prior, CAS prior/outcome) must match the replay, times must be
// strictly increasing, and addresses must be in range.
//
// It returns nil if the trace is consistent, or an error describing the
// first violation. The machine produces consistent traces by construction;
// the checker exists so that tests and experiments can assert the property
// end-to-end (and so alternative Policy/Program implementations can be
// validated against the model).
func CheckTrace(trace []Step, memSize int, initMem []float64) error {
	mem := make([]float64, memSize)
	copy(mem, initMem)
	prevTime := 0
	for i, s := range trace {
		if s.Time <= prevTime {
			return fmt.Errorf("step %d: time %d not increasing (prev %d)", i, s.Time, prevTime)
		}
		prevTime = s.Time
		if s.Req.Addr < 0 || s.Req.Addr >= memSize {
			return fmt.Errorf("step %d: address %d out of range", i, s.Req.Addr)
		}
		old := mem[s.Req.Addr]
		switch s.Req.Kind {
		case OpRead:
			if s.Res.Valid && s.Res.Val != old {
				return fmt.Errorf("step %d: thread %d read %v from %d, replay has %v",
					i, s.Thread, s.Res.Val, s.Req.Addr, old)
			}
		case OpWrite:
			if s.Res.Valid && s.Res.Val != old {
				return fmt.Errorf("step %d: write prior %v, replay has %v", i, s.Res.Val, old)
			}
			mem[s.Req.Addr] = s.Req.Val
		case OpFAA:
			if s.Res.Valid && s.Res.Val != old {
				return fmt.Errorf("step %d: fetch&add prior %v, replay has %v", i, s.Res.Val, old)
			}
			mem[s.Req.Addr] = old + s.Req.Val
		case OpCAS:
			if s.Res.Valid {
				if s.Res.Val != old {
					return fmt.Errorf("step %d: CAS prior %v, replay has %v", i, s.Res.Val, old)
				}
				if s.Res.OK != (old == s.Req.Exp) {
					return fmt.Errorf("step %d: CAS outcome %v inconsistent (old %v, exp %v)",
						i, s.Res.OK, old, s.Req.Exp)
				}
			}
			if old == s.Req.Exp {
				mem[s.Req.Addr] = s.Req.Val
			}
		default:
			return fmt.Errorf("step %d: unknown op kind %d", i, s.Req.Kind)
		}
	}
	return nil
}
