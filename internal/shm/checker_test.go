package shm

import (
	"strings"
	"testing"

	"asyncsgd/internal/rng"
)

func tracedRun(t *testing.T, seed uint64) (*Machine, []Step) {
	t.Helper()
	mk := func() Program {
		return Func(func(th *T) {
			for k := 0; k < 15; k++ {
				th.FAA(0, 1)
				th.Read(1)
				th.Write(1, float64(k))
				th.CAS(2, 0, 1)
			}
		})
	}
	m, err := New(Config{MemSize: 3, Trace: true},
		&randPolicy{r: rng.New(seed)}, mk(), mk(), mk())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return m, m.Trace()
}

func TestCheckTraceAcceptsMachineTraces(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		_, trace := tracedRun(t, seed)
		if err := CheckTrace(trace, 3, nil); err != nil {
			t.Fatalf("seed %d: machine trace rejected: %v", seed, err)
		}
	}
}

func TestCheckTraceDetectsCorruption(t *testing.T) {
	_, trace := tracedRun(t, 1)
	corrupt := func(mut func([]Step)) error {
		cp := make([]Step, len(trace))
		copy(cp, trace)
		mut(cp)
		return CheckTrace(cp, 3, nil)
	}
	cases := map[string]func([]Step){
		"read value":   func(tr []Step) { forFirst(tr, OpRead, func(s *Step) { s.Res.Val += 99 }) },
		"faa prior":    func(tr []Step) { forFirst(tr, OpFAA, func(s *Step) { s.Res.Val += 1 }) },
		"cas outcome":  func(tr []Step) { forFirst(tr, OpCAS, func(s *Step) { s.Res.OK = !s.Res.OK }) },
		"time order":   func(tr []Step) { tr[3].Time = tr[2].Time },
		"address":      func(tr []Step) { tr[0].Req.Addr = 99 },
		"unknown kind": func(tr []Step) { tr[0].Req.Kind = OpKind(77) },
	}
	for name, mut := range cases {
		if err := corrupt(mut); err == nil {
			t.Errorf("%s corruption not detected", name)
		}
	}
}

func TestCheckTraceInitMem(t *testing.T) {
	var got float64
	prog := Func(func(th *T) { got = th.Read(0) })
	m, err := New(Config{MemSize: 1, InitMem: []float64{7}, Trace: true},
		&randPolicy{r: rng.New(3)}, prog)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 7 {
		t.Fatalf("read %v", got)
	}
	if err := CheckTrace(m.Trace(), 1, []float64{7}); err != nil {
		t.Errorf("trace with init mem rejected: %v", err)
	}
	// Wrong init memory must be detected through the read value.
	if err := CheckTrace(m.Trace(), 1, []float64{0}); err == nil ||
		!strings.Contains(err.Error(), "read") {
		t.Errorf("wrong init mem not detected: %v", err)
	}
}

func forFirst(tr []Step, kind OpKind, mut func(*Step)) {
	for i := range tr {
		if tr[i].Req.Kind == kind {
			mut(&tr[i])
			return
		}
	}
}
