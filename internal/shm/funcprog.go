package shm

// Func adapts an ordinary Go function into a Program. The body runs on its
// own goroutine and performs shared-memory operations through the blocking
// methods of T; each call hands control back to the machine until the
// scheduler grants the step. The adapter guarantees the goroutine is
// released when the machine stops early (MaxSteps, policy halt, error):
// Machine.Run calls Stop, which unwinds the body via a recovered panic.
//
// Func programs are convenient for tests, examples and baselines. Hot-path
// workloads (the SGD iteration loop in internal/core) implement Program
// directly as a state machine to avoid per-step channel handoffs.
func Func(body func(*T)) Program {
	return &funcProgram{
		body: body,
		t: &T{
			reqCh:  make(chan Request),
			resCh:  make(chan Result),
			killCh: make(chan struct{}),
		},
		doneCh: make(chan struct{}),
	}
}

// T is the operation handle passed to a Func body. Its methods block until
// the machine schedules the operation and return its result.
type T struct {
	reqCh  chan Request
	resCh  chan Result
	killCh chan struct{}
	tag    Tag
}

type killSentinel struct{}

func (t *T) do(req Request) Result {
	if req.Tag == (Tag{}) {
		req.Tag = t.tag
	}
	select {
	case t.reqCh <- req:
	case <-t.killCh:
		panic(killSentinel{})
	}
	select {
	case res := <-t.resCh:
		return res
	case <-t.killCh:
		panic(killSentinel{})
	}
}

// Read atomically reads register addr.
func (t *T) Read(addr int) float64 {
	return t.do(Request{Kind: OpRead, Addr: addr}).Val
}

// Write atomically writes v to register addr and returns the prior value.
func (t *T) Write(addr int, v float64) float64 {
	return t.do(Request{Kind: OpWrite, Addr: addr, Val: v}).Val
}

// FAA atomically adds delta to register addr and returns the prior value
// (the paper's fetch&add primitive).
func (t *T) FAA(addr int, delta float64) float64 {
	return t.do(Request{Kind: OpFAA, Addr: addr, Val: delta}).Val
}

// CAS atomically compares register addr with exp and, on match, stores v.
// It returns the prior value and whether the swap happened.
func (t *T) CAS(addr int, exp, v float64) (prior float64, swapped bool) {
	res := t.do(Request{Kind: OpCAS, Addr: addr, Exp: exp, Val: v})
	return res.Val, res.OK
}

// Annotate sets the tag attached to subsequent operations (visible to the
// scheduling policy). Pass the zero Tag to clear.
func (t *T) Annotate(tag Tag) { t.tag = tag }

type funcProgram struct {
	body    def
	t       *T
	doneCh  chan struct{}
	started bool
	stopped bool
}

// def keeps the function field readable in the struct above.
type def = func(*T)

var _ Program = (*funcProgram)(nil)
var _ Stopper = (*funcProgram)(nil)

// Next implements Program by relaying results/requests to the body
// goroutine.
func (p *funcProgram) Next(prev Result) (Request, bool) {
	if !p.started {
		p.started = true
		go func() {
			defer close(p.doneCh)
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(killSentinel); !ok {
						panic(r)
					}
				}
			}()
			p.body(p.t)
		}()
	} else {
		select {
		case p.t.resCh <- prev:
		case <-p.doneCh:
			return Request{}, true
		}
	}
	select {
	case req := <-p.t.reqCh:
		return req, false
	case <-p.doneCh:
		return Request{}, true
	}
}

// Stop releases the body goroutine if it is still blocked on an operation.
func (p *funcProgram) Stop() {
	if !p.started || p.stopped {
		return
	}
	p.stopped = true
	select {
	case <-p.doneCh:
	default:
		close(p.t.killCh)
		<-p.doneCh
	}
}
