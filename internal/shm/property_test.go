package shm

import (
	"testing"
	"testing/quick"

	"asyncsgd/internal/rng"
)

// randPolicy schedules a uniformly random live thread, deterministic in
// its seed — the property tests quantify over schedules through it.
type randPolicy struct{ r *rng.Rand }

func (p *randPolicy) Next(v *View) Decision {
	n := v.NumThreads()
	live := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if v.Live(i) {
			live = append(live, i)
		}
	}
	if len(live) == 0 {
		return Decision{Thread: -1}
	}
	return Decision{Thread: live[p.r.Intn(len(live))]}
}

// Property: fetch&add conservation — under ANY schedule, the final value
// of each register equals its initial value plus the sum of all deltas,
// and the counter hands out every value 0..total-1 exactly once.
func TestPropertyFAAConservationAnySchedule(t *testing.T) {
	f := func(seed uint64, nThreads, perThread uint8) bool {
		n := int(nThreads%4) + 1
		per := int(perThread%20) + 1
		priors := make(map[float64]int)
		progs := make([]Program, n)
		for i := 0; i < n; i++ {
			progs[i] = Func(func(th *T) {
				for k := 0; k < per; k++ {
					old := th.FAA(0, 1)
					priors[old]++ // machine is sequential: safe
					th.FAA(1, 0.5)
				}
			})
		}
		m, err := New(Config{MemSize: 2}, &randPolicy{r: rng.New(seed)}, progs...)
		if err != nil {
			return false
		}
		if _, err := m.Run(); err != nil {
			return false
		}
		total := n * per
		if m.Mem()[0] != float64(total) || m.Mem()[1] != 0.5*float64(total) {
			return false
		}
		for k := 0; k < total; k++ {
			if priors[float64(k)] != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: reads always return a value some prefix of writes could have
// produced — for a register written with strictly increasing values by one
// writer, readers observe a monotone sequence (sequential consistency of
// single-writer registers).
func TestPropertySingleWriterMonotoneReads(t *testing.T) {
	f := func(seed uint64) bool {
		const writes = 30
		writer := Func(func(th *T) {
			for k := 1; k <= writes; k++ {
				th.Write(0, float64(k))
			}
		})
		ok := true
		reader := Func(func(th *T) {
			prev := -1.0
			for k := 0; k < writes; k++ {
				got := th.Read(0)
				if got < prev {
					ok = false
				}
				prev = got
			}
		})
		m, err := New(Config{MemSize: 1}, &randPolicy{r: rng.New(seed)}, writer, reader)
		if err != nil {
			return false
		}
		if _, err := m.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: CAS mutual exclusion — concurrent CAS-based lock acquisition
// admits exactly one winner per round under any schedule.
func TestPropertyCASMutex(t *testing.T) {
	f := func(seed uint64, nThreads uint8) bool {
		n := int(nThreads%5) + 2
		winners := 0
		progs := make([]Program, n)
		for i := 0; i < n; i++ {
			progs[i] = Func(func(th *T) {
				if _, ok := th.CAS(0, 0, 1); ok {
					winners++ // sequential machine: safe
				}
			})
		}
		m, err := New(Config{MemSize: 1}, &randPolicy{r: rng.New(seed)}, progs...)
		if err != nil {
			return false
		}
		if _, err := m.Run(); err != nil {
			return false
		}
		return winners == 1 && m.Mem()[0] == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the machine always terminates within the step budget implied
// by the programs (no livelock), and Completed+Crashed+Stalled == threads.
func TestPropertyStatsAccounting(t *testing.T) {
	f := func(seed uint64, nThreads uint8, maxSteps uint16) bool {
		n := int(nThreads%4) + 1
		cap := int(maxSteps%200) + 1
		progs := make([]Program, n)
		for i := 0; i < n; i++ {
			progs[i] = Func(func(th *T) {
				for k := 0; k < 50; k++ {
					th.FAA(0, 1)
				}
			})
		}
		m, err := New(Config{MemSize: 1, MaxSteps: cap},
			&randPolicy{r: rng.New(seed)}, progs...)
		if err != nil {
			return false
		}
		stats, err := m.Run()
		if err != nil {
			return false
		}
		if stats.Steps > cap {
			return false
		}
		return stats.Completed+stats.Crashed+stats.Stalled == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
