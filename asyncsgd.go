// Package asyncsgd is a reproduction of "The Convergence of Stochastic
// Gradient Descent in Asynchronous Shared Memory" (Alistarh, De Sa,
// Konstantinov; PODC 2018). It provides:
//
//   - a deterministic asynchronous shared-memory machine with adaptive
//     adversarial scheduling (the paper's execution model),
//   - the lock-free SGD algorithms of the paper (Algorithm 1 "EpochSGD"
//     and Algorithm 2 "FullSGD") running on that machine,
//   - a real-goroutine Hogwild runtime with CAS-emulated float fetch&add,
//   - the martingale analysis toolkit (rate supermartingales, the failure
//     probability bounds of Theorems 3.1/6.3/6.5 and Corollary 6.7, and
//     the Section-5 lower-bound closed forms),
//   - the experiment drivers (E1–E19) that regenerate every quantitative
//     claim in the paper,
//   - a fault-injection layer (DESIGN.md §8): crash/rejoin scheduling
//     with crash-safe ticket reclamation on both runtimes, plus a
//     Byzantine-gradient adversary with norm-clipping and
//     coordinate-median defenses,
//   - the concurrent scenario-sweep engine (RunSweep) that executes
//     parameter grids on a GOMAXPROCS-aware pool with deterministic
//     per-cell seeds, and
//   - the sweep-as-a-service layer (Serve, SweepRequest): a streaming
//     HTTP job server over the sweep engine with an LRU result cache.
//
// This package is a facade: it re-exports the stable API surface of the
// internal packages so that applications depend on a single import.
// See README.md for the project map, DESIGN.md for the architecture and
// EXPERIMENTS.md for the recorded reproduction results. The Example
// functions in example_test.go are compiled, executed quickstarts.
package asyncsgd

import (
	"context"
	"io"

	"asyncsgd/internal/baseline"
	"asyncsgd/internal/cluster"
	"asyncsgd/internal/core"
	"asyncsgd/internal/data"
	"asyncsgd/internal/experiments"
	"asyncsgd/internal/grad"
	"asyncsgd/internal/hogwild"
	"asyncsgd/internal/martingale"
	"asyncsgd/internal/report"
	"asyncsgd/internal/rng"
	"asyncsgd/internal/sched"
	"asyncsgd/internal/serve"
	"asyncsgd/internal/shm"
	"asyncsgd/internal/sweep"
	"asyncsgd/internal/vec"
)

// --- vectors and randomness ---------------------------------------------

type (
	// Dense is a dense float64 vector.
	Dense = vec.Dense
	// Sparse is a sparse vector in coordinate (index/value) form, the
	// representation the sparse update pipeline moves through oracles,
	// runtimes and the contention tracker.
	Sparse = vec.Sparse
	// Rand is the deterministic splittable PRNG used everywhere.
	Rand = rng.Rand
)

// NewDense returns a zero vector of dimension d.
func NewDense(d int) Dense { return vec.NewDense(d) }

// NewSparse builds a Sparse of dimension d from parallel index/value
// slices (copied, sorted, zeros dropped).
func NewSparse(d int, indices []int, values []float64) (Sparse, error) {
	return vec.NewSparse(d, indices, values)
}

// NewRand returns a seeded deterministic generator.
func NewRand(seed uint64) *Rand { return rng.New(seed) }

// --- objectives ----------------------------------------------------------

type (
	// Oracle is a stochastic-gradient oracle (see internal/grad).
	Oracle = grad.Oracle
	// SparseOracle is the optional sparse-gradient capability: the
	// oracle announces each gradient's read support and emits index/value
	// update lists, letting runtimes do O(nnz) work per iteration.
	SparseOracle = grad.SparseOracle
	// Constants are the analytic constants (c, L, M², R) of an objective.
	Constants = grad.Constants
	// Dataset is a synthetic supervised dataset.
	Dataset = data.Dataset
	// LinearConfig parameterizes synthetic linear-regression data.
	LinearConfig = data.LinearConfig
	// LogisticConfig parameterizes synthetic classification data.
	LogisticConfig = data.LogisticConfig
)

// NewQuad1D returns the paper's Section-5 objective f(x)=½x² with noisy
// gradients g̃(x) = x − ũ, ũ ~ N(0, σ²).
func NewQuad1D(sigma, r0 float64) (Oracle, error) { return grad.NewQuad1D(sigma, r0) }

// NewIsoQuadratic returns the isotropic quadratic f(x) = (c/2)‖x−x*‖²
// with Gaussian gradient noise σ and M²-ball radius r0.
func NewIsoQuadratic(d int, c, sigma, r0 float64, xstar Dense) (Oracle, error) {
	return grad.NewIsoQuadratic(d, c, sigma, r0, xstar)
}

// NewQuadratic returns an anisotropic quadratic with spectrum lambda.
func NewQuadratic(lambda, xstar Dense, sigma, r0 float64) (Oracle, error) {
	return grad.NewQuadratic(lambda, xstar, sigma, r0)
}

// NewLeastSquares builds the least-squares oracle over a dataset.
func NewLeastSquares(ds *Dataset, r0 float64) (Oracle, error) {
	return grad.NewLeastSquares(ds, r0)
}

// NewLogistic builds the ℓ2-regularized logistic-regression oracle.
func NewLogistic(ds *Dataset, lambda, r0 float64) (Oracle, error) {
	return grad.NewLogistic(ds, lambda, r0)
}

// NewSingleCoordinate wraps an oracle so gradients have a single non-zero
// entry (the sparsity regime of the prior De Sa et al. analysis).
func NewSingleCoordinate(base Oracle) Oracle { return grad.NewSingleCoordinate(base) }

// NewSparseLeastSquares builds least squares over sparse feature rows —
// the workload where the sparse pipeline's O(nnz) updates beat the dense
// O(d) scan. Typically fed a dataset thinned with SparsifyRows.
func NewSparseLeastSquares(ds *Dataset, r0 float64) (*grad.SparseLeastSquares, error) {
	return grad.NewSparseLeastSquares(ds, r0)
}

// AsSparseOracle returns o's sparse capability, if it has one.
func AsSparseOracle(o Oracle) (SparseOracle, bool) { return grad.AsSparse(o) }

// SparsifyRows thins a dataset's feature rows in place (keeping each
// entry with probability keep, rescaled to preserve second moments).
func SparsifyRows(ds *Dataset, keep float64, r *Rand) error {
	return data.SparsifyRows(ds, keep, r)
}

// NewMiniBatch wraps an oracle so each gradient averages b base draws,
// shrinking the noise part of M² by 1/b.
func NewMiniBatch(base Oracle, b int) Oracle { return grad.NewMiniBatch(base, b) }

// MFConfig parameterizes the matrix-factorization workload.
type MFConfig = grad.MFConfig

// NewMatrixFactorization builds the non-convex sparse-update matrix
// completion workload (outside the convex theory; see internal/grad).
func NewMatrixFactorization(cfg MFConfig, r *Rand) (*grad.MatrixFactorization, error) {
	return grad.NewMatrixFactorization(cfg, r)
}

// GenLinear generates a synthetic linear-regression dataset.
func GenLinear(cfg LinearConfig, r *Rand) (*Dataset, error) { return data.GenLinear(cfg, r) }

// GenLogistic generates a synthetic classification dataset.
func GenLogistic(cfg LogisticConfig, r *Rand) (*Dataset, error) { return data.GenLogistic(cfg, r) }

// --- the shared-memory model and schedulers ------------------------------

type (
	// Policy schedules shared-memory steps (the adversary).
	Policy = shm.Policy
	// RoundRobin is the fair baseline scheduler.
	RoundRobin = sched.RoundRobin
	// Random schedules a uniformly random live thread each step.
	Random = sched.Random
	// GeometricPause injects stochastic geometric delays.
	GeometricPause = sched.GeometricPause
	// StaleGradient is the Section-5 lower-bound adversary.
	StaleGradient = sched.StaleGradient
	// MaxStale is the budgeted maximum-staleness adaptive adversary.
	MaxStale = sched.MaxStale
	// CrashAt crashes chosen threads at chosen times.
	CrashAt = sched.CrashAt
	// Quantum models OS-style preemptive quanta (bursty benign schedules).
	Quantum = sched.Quantum
	// Faulty is the crash-fault adversary: it kills chosen threads at
	// chosen points inside an iteration (see CrashPoint) and can park
	// spare thread ids that rejoin after a crash. Pair ticket crashes
	// with EpochConfig.CrashRecovery to exercise the reclamation
	// protocol (DESIGN.md §8).
	Faulty = sched.Faulty
	// ThreadCrash is one planned crash in a Faulty policy.
	ThreadCrash = sched.ThreadCrash
	// CrashPoint selects where inside an iteration a ThreadCrash fires.
	CrashPoint = sched.CrashPoint
)

// Crash points of the Faulty adversary. CrashHoldingTicket — dying with
// a claimed, unpublished staleness ticket — is the one that wedges a
// gated discipline unless EpochConfig.CrashRecovery is armed.
const (
	CrashAtBoundary    = sched.CrashAtBoundary
	CrashAtGate        = sched.CrashAtGate
	CrashHoldingTicket = sched.CrashHoldingTicket
)

// --- the paper's algorithms ----------------------------------------------

type (
	// EpochConfig parameterizes Algorithm 1 on the simulated machine.
	EpochConfig = core.EpochConfig
	// EpochResult is the outcome of one EpochSGD run.
	EpochResult = core.EpochResult
	// FullConfig parameterizes Algorithm 2.
	FullConfig = core.FullConfig
	// FullResult is the outcome of Algorithm 2.
	FullResult = core.FullResult
	// IterRecord captures one completed SGD iteration.
	IterRecord = core.IterRecord
	// SeqConfig parameterizes the sequential baseline.
	SeqConfig = baseline.SeqConfig
	// SeqResult is the sequential baseline outcome.
	SeqResult = baseline.SeqResult
)

// RunEpoch executes Algorithm 1 (lock-free SGD) on the simulated
// asynchronous shared-memory machine.
func RunEpoch(cfg EpochConfig) (*EpochResult, error) { return core.RunEpoch(cfg) }

// RunFull executes Algorithm 2 (epoch halving with guaranteed
// convergence, Corollary 7.1).
func RunFull(cfg FullConfig) (*FullResult, error) { return core.RunFull(cfg) }

// RunSequential executes the sequential SGD baseline.
func RunSequential(cfg SeqConfig) (*SeqResult, error) { return baseline.RunSequential(cfg) }

// AlphaSequential is the Theorem-3.1 step size α = cεϑ/M².
func AlphaSequential(cst Constants, eps, vartheta float64) float64 {
	return core.AlphaSequential(cst, eps, vartheta)
}

// AlphaAsync is the Corollary-6.7 step size for lock-free SGD under an
// adaptive adversary with maximum interval contention tauMax.
func AlphaAsync(cst Constants, eps, vartheta float64, tauMax, n, d int) float64 {
	return core.AlphaAsync(cst, eps, vartheta, tauMax, n, d)
}

// --- real-thread runtime --------------------------------------------------

type (
	// ParallelConfig parameterizes the real-goroutine runtime. Beyond
	// workers/iterations/step size it carries the performance knobs:
	// Layout pins the model's memory layout (the LayoutAuto default
	// picks the cache-line-banked layout at d ≥ hogwild.BankedAbove and
	// honors Padded below it), and PinWorkers locks each worker
	// goroutine to an OS thread for stable cache/NUMA placement.
	ParallelConfig = hogwild.Config
	// ParallelResult is its outcome.
	ParallelResult = hogwild.Result
	// Mode selects a built-in synchronization discipline.
	Mode = hogwild.Mode
	// ModelLayout selects the shared model's memory layout in
	// ParallelConfig (auto, packed, cache-line-banked or padded).
	ModelLayout = hogwild.Layout
	// Strategy is the pluggable synchronization discipline of the
	// real-thread runtime; implement it to add new disciplines without
	// touching RunParallel.
	Strategy = hogwild.Strategy
	// Stepper executes SGD iterations for one worker under a Strategy.
	Stepper = hogwild.Stepper
	// BulkApplier is the optional Strategy capability for applying a
	// dense gradient in amortized coordinate runs instead of d
	// per-coordinate calls; the built-in lock-free and striped-lock
	// strategies implement it.
	BulkApplier = hogwild.BulkApplier
)

// Model layout choices for ParallelConfig.Layout. LayoutAuto (the zero
// value) derives the layout from Padded and the dimension: banked at
// d ≥ hogwild.BankedAbove, padded when requested below it, packed
// otherwise.
const (
	LayoutAuto   = hogwild.LayoutAuto
	LayoutPacked = hogwild.LayoutPacked
	LayoutBanked = hogwild.LayoutBanked
	LayoutPadded = hogwild.LayoutPadded
)

// Real-thread synchronization modes.
const (
	LockFree       = hogwild.LockFree
	CoarseLock     = hogwild.CoarseLock
	ShardedLock    = hogwild.ShardedLock
	SparseLockFree = hogwild.SparseLockFree
)

// NewLockFreeStrategy returns the Algorithm-1 lock-free strategy.
func NewLockFreeStrategy() Strategy { return hogwild.NewLockFree() }

// NewCoarseLockStrategy returns the consistent coarse-locking baseline.
func NewCoarseLockStrategy() Strategy { return hogwild.NewCoarseLock() }

// NewStripedLockStrategy returns striped per-coordinate locking with the
// given stripe count (0 ⇒ the package default).
func NewStripedLockStrategy(stripes int) Strategy { return hogwild.NewStripedLock(stripes) }

// NewSparseLockFreeStrategy returns the sparse-aware lock-free strategy
// (requires a SparseOracle; O(nnz) shared-memory operations per
// iteration).
func NewSparseLockFreeStrategy() Strategy { return hogwild.NewSparseLockFree() }

// StalenessBounded is implemented by strategies that enforce a staleness
// bound τ and expose the largest staleness any iteration actually
// exhibited (guaranteed ≤ τ).
type StalenessBounded = hogwild.StalenessBounded

// NewBoundedStalenessStrategy returns the bounded-staleness gated
// strategy: no iteration may begin while any iteration more than tau
// tickets older is still in flight, so the maximum delay τ the paper's
// Section-5 adversary exploits is capped at tau by construction. The
// returned strategy implements StalenessBounded. On the simulated
// machine, EpochConfig.StalenessBound is the counterpart.
func NewBoundedStalenessStrategy(tau int) Strategy { return hogwild.NewBoundedStaleness(tau) }

// NewUpdateBatchingStrategy returns the update-batching strategy: each
// worker accumulates b gradients in a local sparse buffer and applies
// them in one scatter fetch&add pass, cutting shared-memory write traffic
// ~b×. On the simulated machine, EpochConfig.Batch is the counterpart.
func NewUpdateBatchingStrategy(b int) Strategy { return hogwild.NewUpdateBatching(b) }

// NewEpochFenceStrategy returns the epoch-fencing strategy: iterations
// are fenced into epochs of the given length, and an epoch may start only
// once every earlier epoch's updates are fully applied — consistent
// snapshots at epoch boundaries, FullSGD's per-epoch-model condition
// inside a single run. On the simulated machine, EpochConfig.FenceEvery
// is the counterpart.
func NewEpochFenceStrategy(every int) Strategy { return hogwild.NewEpochFence(every) }

// RunParallel executes lock-free (or lock-based) SGD on real goroutines.
func RunParallel(cfg ParallelConfig) (*ParallelResult, error) { return hogwild.Run(cfg) }

// --- fault injection -------------------------------------------------------

type (
	// FaultPlan is the real-thread crash schedule (ParallelConfig.Faults):
	// seeded, deterministic per plan, validated against the worker count.
	// Recover arms supervisor-side ticket reclamation — required for
	// in-flight crashes under a gated strategy, which would otherwise
	// deadlock the survivors at the ≤ τ admission (DESIGN.md §8).
	FaultPlan = hogwild.FaultPlan
	// WorkerFault is one planned worker crash in a FaultPlan.
	WorkerFault = hogwild.WorkerFault
	// ByzantineMode selects a gradient-corruption transform.
	ByzantineMode = grad.ByzantineMode
	// CorruptionMeter is implemented by the Byzantine oracle wrapper:
	// the count of corrupted gradients delivered, shared across clones.
	CorruptionMeter = grad.CorruptionMeter
	// ClipMeter is implemented by the norm-clip wrapper: the count of
	// gradients it modified (rescaled or sanitized).
	ClipMeter = grad.ClipMeter
)

// Byzantine corruption modes. SignFlip is norm-plausible (clipping
// cannot see it; coordinate-median aggregation can), ScaleBlowup and
// NaNInject are norm-visible (per-update clipping defuses both).
const (
	SignFlip    = grad.SignFlip
	ScaleBlowup = grad.ScaleBlowup
	NaNInject   = grad.NaNInject
)

// ErrStrategyBusy reports a Strategy value bound by a concurrent run; a
// Strategy may be reused sequentially but never concurrently.
var ErrStrategyBusy = hogwild.ErrStrategyBusy

// NewByzantine wraps an oracle so that a seeded roster of f of the n
// worker clones corrupts every stochastic gradient it returns (Value
// stays honest; the SparseOracle capability is preserved). The wrapper
// implements CorruptionMeter.
func NewByzantine(base Oracle, mode ByzantineMode, f, n int, scale float64, seed uint64) (Oracle, error) {
	return grad.NewByzantine(base, mode, f, n, scale, seed)
}

// NewNormClip wraps an oracle with per-update gradient norm clipping:
// oversized gradients rescale to limit preserving direction, non-finite
// coordinates zero out. The wrapper implements ClipMeter.
func NewNormClip(base Oracle, limit float64) (Oracle, error) {
	return grad.NewNormClip(base, limit)
}

// NewMedianAggregateStrategy returns the coordinate-median aggregation
// defense: each round every live worker deposits a proposed update and
// one leader applies the coordinate-wise median, so a Byzantine
// minority's gradients are outvoted — including the norm-plausible
// sign-flip that clipping cannot detect. Real threads only (no machine
// counterpart); the round barrier is crash-aware.
func NewMedianAggregateStrategy() Strategy { return hogwild.NewMedianAggregate() }

// ParallelFullConfig parameterizes Algorithm 2 on real goroutines.
type ParallelFullConfig = hogwild.FullConfig

// ParallelFullResult is its outcome.
type ParallelFullResult = hogwild.FullResult

// RunParallelFull executes Algorithm 2 (halving-α epochs) on real
// goroutines with epoch fencing by construction.
func RunParallelFull(cfg ParallelFullConfig) (*ParallelFullResult, error) {
	return hogwild.RunFull(cfg)
}

// --- analysis --------------------------------------------------------------

// BoundSequential is the Theorem-3.1 failure-probability bound.
func BoundSequential(cst Constants, eps, vartheta float64, T int, x0DistSq float64) float64 {
	return martingale.BoundSequential(cst, eps, vartheta, T, x0DistSq)
}

// BoundAsync is the Corollary-6.7 failure-probability bound.
func BoundAsync(cst Constants, eps, vartheta float64, tauMax, n, d, T int, x0DistSq float64) float64 {
	return martingale.BoundAsync(cst, eps, vartheta, tauMax, n, d, T, x0DistSq)
}

// CriticalDelay is the Theorem-5.1 delay threshold for a fixed step size.
func CriticalDelay(alpha float64) int { return martingale.CriticalDelay(alpha) }

// SlowdownFactor is the Theorem-5.1 Ω(τ) slowdown factor.
func SlowdownFactor(alpha float64, tau int) float64 {
	return martingale.SlowdownFactor(alpha, tau)
}

// --- scenario sweeps --------------------------------------------------------

type (
	// SweepSpec declares a scenario grid for the concurrent sweep engine:
	// axes over runtime, oracle family, strategy/discipline, workers,
	// dimension, step size and seed replicates.
	SweepSpec = sweep.Spec
	// SweepRuntime selects a cell's runtime (real goroutines or the
	// deterministic simulated machine).
	SweepRuntime = sweep.Runtime
	// SweepOracle is one oracle-family axis entry (a named factory).
	SweepOracle = sweep.Oracle
	// SweepStrategy is one strategy/discipline axis entry, mapped onto
	// both runtimes; the SweepLockFree/SweepBoundedStaleness/… helpers
	// below build the standard roster.
	SweepStrategy = sweep.Strategy
	// SweepCell is one fully resolved grid coordinate with its split seed.
	SweepCell = sweep.Cell
	// SweepCellResult is one cell's outcome (deterministic except timing
	// fields on the machine runtime).
	SweepCellResult = sweep.CellResult
	// SweepPointStat aggregates a grid point's seed replicates (Welford
	// mean/variance of loss and dist², worst staleness).
	SweepPointStat = sweep.PointStat
	// SweepTelemetry is one live progress snapshot of a running hogwild
	// cell, delivered through SweepSpec.OnTelemetry: the cell's
	// coordinates plus its staleness gauge, contention counters and
	// iteration progress at sampling time. Wall-clock-dependent — never
	// part of a result document.
	SweepTelemetry = sweep.TelemetrySample
	// ParallelTelemetry is the raw hogwild-runtime snapshot SweepTelemetry
	// is built from (ParallelConfig.OnTelemetry when driving the runtime
	// directly).
	ParallelTelemetry = hogwild.Telemetry
	// SweepFaults is one crash-fault axis entry of a SweepSpec
	// ("none", "crash/k[/rejoin]", "ticket/k[/rejoin]").
	SweepFaults = sweep.Faults
	// SweepByzantine is one gradient-corruption axis entry
	// ("none", "signflip/f", "scale/f", "nan/f").
	SweepByzantine = sweep.Byzantine
	// SweepDefense is one defense axis entry ("none", "clip/L",
	// "median"; median requires the hogwild runtime).
	SweepDefense = sweep.Defense
)

// ParseSweepFaults parses a crash-fault axis label.
func ParseSweepFaults(s string) (SweepFaults, error) { return sweep.ParseFaults(s) }

// ParseSweepByzantine parses a gradient-corruption axis label.
func ParseSweepByzantine(s string) (SweepByzantine, error) { return sweep.ParseByzantine(s) }

// ParseSweepDefense parses a defense axis label.
func ParseSweepDefense(s string) (SweepDefense, error) { return sweep.ParseDefense(s) }

// Sweep runtimes.
const (
	SweepHogwild = sweep.Hogwild
	SweepMachine = sweep.Machine
)

// The standard strategy-axis roster, mapped onto both runtimes (the
// same strategy↔machine-discipline pairing the differential harness
// checks).

// SweepLockFree is plain dense Algorithm 1 on both runtimes.
func SweepLockFree() SweepStrategy { return sweep.LockFree() }

// SweepCoarseLock is the consistent locking baseline.
func SweepCoarseLock() SweepStrategy { return sweep.CoarseLock() }

// SweepStripedLock guards coordinates with a striped lock table.
func SweepStripedLock(stripes int) SweepStrategy { return sweep.StripedLock(stripes) }

// SweepSparseLockFree is the sparse-aware Algorithm 1 (O(nnz) shared
// ops; requires SparseOracle-capable oracle families).
func SweepSparseLockFree() SweepStrategy { return sweep.SparseLockFree() }

// SweepBoundedStaleness is the τ-gated discipline on both runtimes.
func SweepBoundedStaleness(tau int) SweepStrategy { return sweep.BoundedStaleness(tau) }

// SweepUpdateBatching buffers b gradients per worker before one scatter
// pass.
func SweepUpdateBatching(b int) SweepStrategy { return sweep.UpdateBatching(b) }

// SweepEpochFence fences the iteration stream into epochs of the given
// length.
func SweepEpochFence(every int) SweepStrategy { return sweep.EpochFence(every) }

// RunSweep expands the spec into cells with deterministic per-cell seeds
// and executes them on a bounded GOMAXPROCS-aware pool, returning results
// in cell-index order. See internal/sweep (DESIGN.md §5).
func RunSweep(s SweepSpec) ([]SweepCellResult, error) { return sweep.Run(s) }

// RunSweepContext is RunSweep with job-scoped cancellation: canceling
// ctx stops admitting cells (in-flight cells finish), never-started
// cells record sweep.ErrCanceled, and the error is ctx.Err().
func RunSweepContext(ctx context.Context, s SweepSpec) ([]SweepCellResult, error) {
	return sweep.RunContext(ctx, s)
}

// AggregateSweep groups cell results by grid point, folding seed
// replicates into Welford accumulators.
func AggregateSweep(results []SweepCellResult) []SweepPointStat {
	return sweep.Aggregate(results)
}

// SweepFaultTable renders aggregated results as the robustness table:
// the fault/byzantine/defense labels plus the crash, reclamation,
// corruption and divergence counters (E19's format). The returned
// table prints via its String method.
func SweepFaultTable(title string, stats []SweepPointStat) *report.Table {
	return sweep.FaultTable(title, stats)
}

// --- sweep-as-a-service ------------------------------------------------------

type (
	// SweepRequest is the JSON job specification of the sweep service: a
	// staleness phase-diagram grid, one field per `asgdbench sweep` flag,
	// with absent fields defaulting to the CLI defaults (an empty request
	// is the standard 108-cell deterministic machine grid).
	SweepRequest = serve.SweepRequest
	// SweepEvent is one element of a job's result stream (NDJSON line /
	// SSE event): a per-cell result, the terminal asgdbench/v2 aggregate
	// document, or an error.
	SweepEvent = serve.Event
	// SweepJobStatus is the introspection record of one submitted job.
	SweepJobStatus = serve.JobStatus
	// SweepReport is the asgdbench/v2 JSON document (experiment records
	// plus the sweep record), shared byte-for-byte by `asgdbench -json`,
	// `asgdbench sweep -json` and the serve result endpoint.
	SweepReport = serve.Report
	// ServeConfig parameterizes the sweep job server (queue depth, LRU
	// result-cache size, retained history, drain timeout).
	ServeConfig = serve.Config
	// SweepServer is the embeddable job server: a bounded FIFO job
	// queue over the sweep engine with streaming results and an LRU
	// result cache. Mount Handler on any mux; stop with Drain/Close.
	SweepServer = serve.Server
)

// NewSweepServer starts a sweep job server (its executor goroutine runs
// until Drain or Close).
func NewSweepServer(cfg ServeConfig) *SweepServer { return serve.New(cfg) }

// Serve runs the sweep-as-a-service HTTP server on addr until ctx is
// canceled, then drains gracefully: submissions are refused while queued
// and running jobs finish, bounded by cfg.DrainTimeout. This is the
// library form of `cmd/asgdserve`.
func Serve(ctx context.Context, addr string, cfg ServeConfig) error {
	return serve.ListenAndServe(ctx, addr, cfg)
}

// RunSweepRequest executes one sweep request in process — normalize,
// expand, run on the weighted pool, aggregate — returning the
// asgdbench/v2 report and streaming per-cell results through onResult
// (may be nil). It is the exact pipeline an asgdserve job runs.
func RunSweepRequest(ctx context.Context, req SweepRequest, onResult func(SweepCellResult)) (*SweepReport, error) {
	return serve.RunRequest(ctx, req, onResult)
}

// RunSweepRequestStream is RunSweepRequest with a live telemetry tap:
// when onTelemetry is non-nil and req.TelemetryMS > 0, running hogwild
// cells are sampled at that period and the snapshots stream through
// onTelemetry, serialized with onResult. Telemetry never changes the
// returned report.
func RunSweepRequestStream(ctx context.Context, req SweepRequest, onResult func(SweepCellResult), onTelemetry func(SweepTelemetry)) (*SweepReport, error) {
	return serve.RunRequestStream(ctx, req, onResult, onTelemetry)
}

// --- distributed sweep cluster -----------------------------------------------

type (
	// ClusterConfig parameterizes a cluster coordinator: lease TTL, cells
	// per lease, worker poll interval, and the optional durable job log.
	ClusterConfig = cluster.Config
	// ClusterCoordinator owns cluster-side sweep dispatch: plug it into a
	// SweepServer as both Dispatcher and Journal (ServeConfig fields),
	// mount its worker protocol with Mount, and call Recover after
	// NewSweepServer to resubmit jobs replayed from the durable log.
	ClusterCoordinator = cluster.Coordinator
	// ClusterWorkerConfig parameterizes a worker node (coordinator URL,
	// label, pool concurrency, poll interval).
	ClusterWorkerConfig = cluster.WorkerConfig
	// ClusterWorker is one leased execution node; Run drives the
	// register/lease/execute/report loop until its context is canceled.
	ClusterWorker = cluster.Worker
)

// NewClusterCoordinator builds a coordinator with a volatile (in-memory)
// job queue. See internal/cluster (DESIGN.md §10).
func NewClusterCoordinator(cfg ClusterConfig) *ClusterCoordinator {
	return cluster.NewCoordinator(cfg)
}

// NewClusterCoordinatorWithLog opens (or creates) the durable job log at
// path and builds a coordinator that replays and journals through it, so
// a restarted coordinator finishes interrupted sweeps byte-identically.
func NewClusterCoordinatorWithLog(cfg ClusterConfig, path string) (*ClusterCoordinator, error) {
	return cluster.NewCoordinatorWithLog(cfg, path)
}

// NewClusterWorker builds a worker node speaking HTTP to the coordinator
// (the library form of `cmd/asgdworker`).
func NewClusterWorker(cfg ClusterWorkerConfig) (*ClusterWorker, error) {
	return cluster.NewWorker(cfg)
}

// NewLocalClusterWorker builds an in-process worker calling the
// coordinator directly (the `asgdserve -local-workers` fleet).
func NewLocalClusterWorker(c *ClusterCoordinator, cfg ClusterWorkerConfig) *ClusterWorker {
	return cluster.NewLocalWorker(c, cfg)
}

// --- experiments ------------------------------------------------------------

// ExperimentScale selects Quick (tests) or Full (reproduction runs).
type ExperimentScale = experiments.Scale

// Experiment scales.
const (
	Quick     = experiments.Quick
	FullScale = experiments.Full
)

// ExperimentIDs lists the available experiments (e1..e19).
func ExperimentIDs() []string { return experiments.IDs() }

// RunExperiment executes one experiment and writes its tables to w.
func RunExperiment(id string, scale ExperimentScale, w io.Writer) error {
	return experiments.Run(id, scale, w)
}

// RunAllExperiments executes every experiment in order.
func RunAllExperiments(scale ExperimentScale, w io.Writer) error {
	return experiments.RunAll(scale, w)
}
